//! An order-preserving child list with O(1) membership and unlink.
//!
//! A capability's children must iterate in *creation order* — the order
//! is protocol-visible (it fixes the sequence of inter-kernel revoke
//! messages) — while supporting O(1) insert, membership, and removal.
//! The previous representation (`Vec` plus a hash-set membership index)
//! made `remove_child` a linear scan over the vector: the m3fs pattern
//! of closing one extent at a time against a wide parent (one unlink
//! per close) degraded to O(N²).
//!
//! [`ChildList`] stores the children as intrusive doubly-linked nodes
//! over a slab, indexed by a fixed-seed hash map from key to slot:
//!
//! * insert: append to the tail of the list, O(1);
//! * membership: hash lookup, O(1);
//! * unlink: hash lookup, relink the two neighbours, O(1) — exactly one
//!   node is visited, which [`ChildList::probes`] counts so tests can
//!   assert the complexity rather than wall-clock;
//! * iteration: follow the links — creation order, front or back.

use semper_base::{DdlKey, DetHashMap, RawDdlKey};

/// Sentinel slot for "no node".
const NONE: u32 = u32::MAX;

/// One slab node: a child key with its intrusive neighbour links.
#[derive(Debug, Clone, Copy)]
struct Node {
    key: DdlKey,
    prev: u32,
    next: u32,
}

/// An insertion-ordered set of child capability keys.
#[derive(Debug, Clone)]
pub struct ChildList {
    /// Slab of nodes; freed slots are recycled via `free`.
    nodes: Vec<Node>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    /// Key → slab slot, for O(1) membership and unlink.
    index: DetHashMap<RawDdlKey, u32>,
    /// Nodes visited by unlinks — the op count that pins the O(1)
    /// complexity in tests (the former `Vec` scan visited O(width)).
    probes: u64,
}

impl Default for ChildList {
    fn default() -> ChildList {
        ChildList::new()
    }
}

impl ChildList {
    /// Creates an empty list.
    pub fn new() -> ChildList {
        ChildList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NONE,
            tail: NONE,
            index: DetHashMap::default(),
            probes: 0,
        }
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True if there are no children.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// True if `key` is in the list.
    pub fn contains(&self, key: DdlKey) -> bool {
        self.index.contains_key(&key.raw())
    }

    /// Appends `key` (idempotent); returns true if it was inserted.
    pub fn push_back(&mut self, key: DdlKey) -> bool {
        use std::collections::hash_map::Entry;
        let slot = match self.index.entry(key.raw()) {
            Entry::Occupied(_) => return false,
            Entry::Vacant(v) => {
                let node = Node { key, prev: self.tail, next: NONE };
                let slot = match self.free.pop() {
                    Some(s) => {
                        self.nodes[s as usize] = node;
                        s
                    }
                    None => {
                        self.nodes.push(node);
                        (self.nodes.len() - 1) as u32
                    }
                };
                v.insert(slot);
                slot
            }
        };
        match self.tail {
            NONE => self.head = slot,
            t => self.nodes[t as usize].next = slot,
        }
        self.tail = slot;
        true
    }

    /// Unlinks `key`; returns true if it was present. Visits exactly
    /// one node regardless of the list's width.
    pub fn remove(&mut self, key: DdlKey) -> bool {
        let Some(slot) = self.index.remove(&key.raw()) else {
            return false;
        };
        self.probes += 1;
        let Node { prev, next, .. } = self.nodes[slot as usize];
        match prev {
            NONE => self.head = next,
            p => self.nodes[p as usize].next = next,
        }
        match next {
            NONE => self.tail = prev,
            n => self.nodes[n as usize].prev = prev,
        }
        self.free.push(slot);
        true
    }

    /// Iterates the children in creation order (double-ended: `rev()`
    /// walks newest to oldest, which revocation sweeps use).
    pub fn iter(&self) -> Iter<'_> {
        Iter { list: self, front: self.head, back: self.tail, remaining: self.len() }
    }

    /// Total nodes visited by unlinks so far — an operation counter for
    /// complexity assertions in tests (`remove` visits exactly one node,
    /// so after N removals this is exactly N).
    pub fn probes(&self) -> u64 {
        self.probes
    }
}

/// Double-ended creation-order iterator over a [`ChildList`].
pub struct Iter<'a> {
    list: &'a ChildList,
    front: u32,
    back: u32,
    remaining: usize,
}

impl Iterator for Iter<'_> {
    type Item = DdlKey;

    fn next(&mut self) -> Option<DdlKey> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let node = &self.list.nodes[self.front as usize];
        self.front = node.next;
        Some(node.key)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl DoubleEndedIterator for Iter<'_> {
    fn next_back(&mut self) -> Option<DdlKey> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let node = &self.list.nodes[self.back as usize];
        self.back = node.prev;
        Some(node.key)
    }
}

impl ExactSizeIterator for Iter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::{CapType, PeId, VpeId};

    fn key(n: u32) -> DdlKey {
        DdlKey::new(PeId(0), VpeId(0), CapType::Memory, n)
    }

    fn collect(l: &ChildList) -> Vec<DdlKey> {
        l.iter().collect()
    }

    #[test]
    fn keeps_creation_order_across_interleaved_insert_unlink() {
        let mut l = ChildList::new();
        for i in 0..6 {
            assert!(l.push_back(key(i)));
        }
        // Unlink from the middle, the head, and the tail.
        assert!(l.remove(key(2)));
        assert!(l.remove(key(0)));
        assert!(l.remove(key(5)));
        assert_eq!(collect(&l), vec![key(1), key(3), key(4)]);
        // New inserts append after survivors, reusing freed slots.
        assert!(l.push_back(key(7)));
        assert!(l.push_back(key(0))); // re-insert of a removed key
        assert_eq!(collect(&l), vec![key(1), key(3), key(4), key(7), key(0)]);
        assert_eq!(l.len(), 5);
    }

    #[test]
    fn push_is_idempotent() {
        let mut l = ChildList::new();
        assert!(l.push_back(key(1)));
        assert!(!l.push_back(key(1)));
        assert_eq!(l.len(), 1);
        assert!(l.contains(key(1)));
    }

    #[test]
    fn remove_reports_presence() {
        let mut l = ChildList::new();
        l.push_back(key(1));
        assert!(l.remove(key(1)));
        assert!(!l.remove(key(1)));
        assert!(l.is_empty());
        assert_eq!(collect(&l), Vec::<DdlKey>::new());
    }

    #[test]
    fn reverse_iteration_mirrors_forward() {
        let mut l = ChildList::new();
        for i in [3u32, 1, 2] {
            l.push_back(key(i));
        }
        let fwd: Vec<_> = l.iter().collect();
        let mut rev: Vec<_> = l.iter().rev().collect();
        rev.reverse();
        assert_eq!(fwd, rev);
        assert_eq!(fwd, vec![key(3), key(1), key(2)]);
    }

    #[test]
    fn double_ended_meets_in_the_middle() {
        let mut l = ChildList::new();
        for i in 0..4 {
            l.push_back(key(i));
        }
        let mut it = l.iter();
        assert_eq!(it.next(), Some(key(0)));
        assert_eq!(it.next_back(), Some(key(3)));
        assert_eq!(it.next(), Some(key(1)));
        assert_eq!(it.next_back(), Some(key(2)));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
    }

    /// The m3fs close-one-extent-at-a-time pattern: a wide parent loses
    /// one child per close. With the old `Vec` scan this was O(N²)
    /// node visits; the intrusive list must do exactly one visit per
    /// unlink — asserted on the op counter, not wall-clock.
    #[test]
    fn one_at_a_time_teardown_is_linear() {
        const N: u32 = 4096;
        let mut l = ChildList::new();
        for i in 0..N {
            l.push_back(key(i));
        }
        // Tear down in creation order — the worst case for a scan that
        // compacts the vector (every removal shifted N-1 survivors),
        // and the order m3fs produces when a trace closes files in the
        // order it opened them.
        for i in 0..N {
            assert!(l.remove(key(i)));
        }
        assert!(l.is_empty());
        assert_eq!(l.probes(), u64::from(N), "unlink must visit exactly one node per removal");
    }
}
