//! The membership table: PE-id partitions → kernels (§3.2, Figure 2).
//!
//! Each kernel holds a full copy of this table; it is how a DDL key is
//! routed to the kernel owning the object. The mapping is set up at
//! boot; the capability-group migration protocol
//! (`semper_kernel::ops::migrate`) reassigns individual PEs at runtime
//! via [`MembershipTable::set_kernel_of`], propagating the change to
//! every kernel's copy through acknowledged membership updates.

use semper_base::{DdlKey, KernelId, PeId};

/// Maps every PE to the kernel managing its group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipTable {
    kernel_of_pe: Vec<KernelId>,
    kernel_pes: Vec<PeId>,
}

impl MembershipTable {
    /// Builds a table from an explicit assignment.
    ///
    /// `kernel_of_pe[p]` is the kernel managing PE `p`; `kernel_pes[k]`
    /// is the PE kernel `k` runs on.
    pub fn new(kernel_of_pe: Vec<KernelId>, kernel_pes: Vec<PeId>) -> MembershipTable {
        assert!(!kernel_pes.is_empty(), "at least one kernel required");
        for k in &kernel_of_pe {
            assert!(k.idx() < kernel_pes.len(), "PE assigned to nonexistent kernel {k}");
        }
        MembershipTable { kernel_of_pe, kernel_pes }
    }

    /// Builds the default contiguous partitioning: `num_pes` PEs split
    /// into `kernels` equal-size groups, with each group's kernel on the
    /// group's first PE.
    pub fn contiguous(num_pes: u16, kernels: u16) -> MembershipTable {
        assert!(kernels > 0 && kernels <= num_pes);
        // Balanced partition: the first `num_pes % kernels` groups get
        // one extra PE, so every group start stays in range.
        let base = (num_pes / kernels) as usize;
        let extra = (num_pes % kernels) as usize;
        let mut kernel_of_pe = Vec::with_capacity(num_pes as usize);
        let mut kernel_pes = Vec::with_capacity(kernels as usize);
        let mut start = 0usize;
        for k in 0..kernels as usize {
            let size = base + usize::from(k < extra);
            kernel_pes.push(PeId(start as u16));
            for _ in 0..size {
                kernel_of_pe.push(KernelId(k as u16));
            }
            start += size;
        }
        debug_assert_eq!(kernel_of_pe.len(), num_pes as usize);
        MembershipTable { kernel_of_pe, kernel_pes }
    }

    /// The kernel managing `pe`.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is outside the machine.
    pub fn kernel_of(&self, pe: PeId) -> KernelId {
        self.kernel_of_pe[pe.idx()]
    }

    /// Reassigns `pe`'s partition to kernel `k` (capability-group
    /// migration). Kernel PEs themselves never migrate.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is outside the machine or `k` does not exist.
    pub fn set_kernel_of(&mut self, pe: PeId, k: KernelId) {
        assert!(k.idx() < self.kernel_pes.len(), "PE reassigned to nonexistent kernel {k}");
        assert!(!self.kernel_pes.contains(&pe), "kernel PEs cannot migrate");
        self.kernel_of_pe[pe.idx()] = k;
    }

    /// The kernel owning the object behind a DDL key (routed by the
    /// key's creator-PE partition).
    pub fn kernel_of_key(&self, key: DdlKey) -> KernelId {
        self.kernel_of(key.pe())
    }

    /// The PE kernel `k` runs on.
    pub fn kernel_pe(&self, k: KernelId) -> PeId {
        self.kernel_pes[k.idx()]
    }

    /// Number of kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernel_pes.len()
    }

    /// Number of PEs.
    pub fn pe_count(&self) -> usize {
        self.kernel_of_pe.len()
    }

    /// Iterates over the PEs of one kernel's group, in PE order.
    pub fn group_pes(&self, k: KernelId) -> impl Iterator<Item = PeId> + '_ {
        self.kernel_of_pe
            .iter()
            .enumerate()
            .filter(move |(_, kk)| **kk == k)
            .map(|(p, _)| PeId(p as u16))
    }

    /// Size of one kernel's group.
    pub fn group_size(&self, k: KernelId) -> usize {
        self.kernel_of_pe.iter().filter(|kk| **kk == k).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::{CapType, VpeId};

    #[test]
    fn contiguous_partitioning() {
        let t = MembershipTable::contiguous(8, 2);
        assert_eq!(t.kernel_of(PeId(0)), KernelId(0));
        assert_eq!(t.kernel_of(PeId(3)), KernelId(0));
        assert_eq!(t.kernel_of(PeId(4)), KernelId(1));
        assert_eq!(t.kernel_of(PeId(7)), KernelId(1));
        assert_eq!(t.kernel_pe(KernelId(0)), PeId(0));
        assert_eq!(t.kernel_pe(KernelId(1)), PeId(4));
        assert_eq!(t.kernel_count(), 2);
        assert_eq!(t.pe_count(), 8);
    }

    #[test]
    fn uneven_partitioning_assigns_all() {
        let t = MembershipTable::contiguous(10, 3);
        // 10 PEs over 3 kernels: balanced groups of 4, 3, 3.
        assert_eq!(t.group_size(KernelId(0)), 4);
        assert_eq!(t.group_size(KernelId(1)), 3);
        assert_eq!(t.group_size(KernelId(2)), 3);
        let total: usize = (0..3).map(|k| t.group_size(KernelId(k))).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn all_group_starts_in_range() {
        // Regression: 48 kernels over 640 PEs must keep every kernel PE
        // inside the machine (ceil-based partitioning overflowed).
        for kernels in [1u16, 3, 7, 31, 48, 64] {
            let t = MembershipTable::contiguous(640, kernels);
            for k in 0..kernels {
                assert!(t.kernel_pe(KernelId(k)).0 < 640, "{kernels} kernels, K{k}");
            }
            let total: usize = (0..kernels).map(|k| t.group_size(KernelId(k))).sum();
            assert_eq!(total, 640);
        }
    }

    #[test]
    fn key_routing_follows_pe_partition() {
        let t = MembershipTable::contiguous(8, 2);
        let key = DdlKey::new(PeId(6), VpeId(1), CapType::Memory, 9);
        assert_eq!(t.kernel_of_key(key), KernelId(1));
    }

    #[test]
    fn group_pes_enumerates_group() {
        let t = MembershipTable::contiguous(6, 2);
        let g0: Vec<_> = t.group_pes(KernelId(0)).collect();
        assert_eq!(g0, vec![PeId(0), PeId(1), PeId(2)]);
    }

    #[test]
    #[should_panic(expected = "nonexistent kernel")]
    fn invalid_assignment_panics() {
        let _ = MembershipTable::new(vec![KernelId(1)], vec![PeId(0)]);
    }

    #[test]
    fn single_kernel_owns_everything() {
        let t = MembershipTable::contiguous(16, 1);
        for p in 0..16 {
            assert_eq!(t.kernel_of(PeId(p)), KernelId(0));
        }
    }
}
