//! Distributed capability objects and bookkeeping structures.
//!
//! This crate implements the data layer of the paper's capability scheme:
//!
//! * [`membership`] — the membership table (§3.2, Figure 2) mapping PE-id
//!   partitions of the DDL key space to kernels.
//! * [`alloc`] — DDL key allocation (per-creator object-id counters).
//! * [`cap`] — the capability object: resource descriptor, owner, and the
//!   parent/child links of the mapping database.
//! * [`table`] — per-VPE capability tables (selector → DDL key).
//! * [`mapdb`] — the kernel-wide mapping database (DDL key → capability),
//!   with the tree-maintenance operations the exchange and revoke
//!   protocols build on.
//!
//! The *protocol* that mutates these structures across kernels lives in
//! `semper-kernel`; everything here is single-kernel state with
//! deterministic iteration order.

pub mod alloc;
pub mod cap;
pub mod childlist;
pub mod mapdb;
pub mod membership;
pub mod table;

pub use alloc::KeyAllocator;
pub use cap::{CapState, Capability};
pub use childlist::ChildList;
pub use mapdb::MappingDb;
pub use membership::MembershipTable;
pub use table::CapTable;
