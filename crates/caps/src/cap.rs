//! The capability object.
//!
//! From the kernel's perspective (§3.4) a capability references a kernel
//! object (the resource), a VPE (the holder), and other capabilities
//! (parent and children in the mapping database). In SemperOS those
//! references are DDL keys so they can cross kernel boundaries; in M3
//! baseline mode the same structure is used but lookups skip the DDL
//! decode cost.
//!
//! # Child-list determinism contract
//!
//! The child list is insertion-ordered: children appear in creation
//! order, and revocation walks them in that order — this is
//! protocol-visible (it fixes the order of inter-kernel revoke messages)
//! and must never be replaced by hash-ordered iteration. The backing
//! structure is [`crate::ChildList`], an intrusive linked list over a
//! slab with a hash index: insert, membership, *and unlink* are O(1)
//! (the previous `Vec` representation scanned on unlink, making the
//! m3fs close-one-extent-at-a-time pattern quadratic against a wide
//! parent).

use crate::childlist::ChildList;
use semper_base::msg::CapKindDesc;
use semper_base::{CapSel, DdlKey, VpeId};

/// Lifecycle state of a capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapState {
    /// Normal state: usable and exchangeable.
    Usable,
    /// Phase 1 of revocation has marked this capability; exchanges
    /// involving it are denied (*pointless* prevention, Table 2) and it
    /// will be deleted once all remote children acknowledged.
    Revoking,
}

/// A capability: the unit of authority.
#[derive(Debug, Clone)]
pub struct Capability {
    /// Globally valid address of this capability.
    pub key: DdlKey,
    /// Description of the resource this capability grants access to.
    pub kind: CapKindDesc,
    /// The VPE holding this capability.
    pub owner: VpeId,
    /// Selector in the owner's capability table.
    pub sel: CapSel,
    /// Parent in the capability tree (`None` for root capabilities).
    pub parent: Option<DdlKey>,
    /// Children in the capability tree, in creation order (the
    /// protocol-visible order; see the module docs).
    children: ChildList,
    /// Lifecycle state.
    pub state: CapState,
    /// Outstanding inter-kernel revoke replies for this capability
    /// (Algorithm 1's per-capability counter).
    pub outstanding: u32,
}

impl Capability {
    /// Creates a usable root capability (no parent).
    pub fn root(key: DdlKey, kind: CapKindDesc, owner: VpeId, sel: CapSel) -> Capability {
        Capability {
            key,
            kind,
            owner,
            sel,
            parent: None,
            children: ChildList::new(),
            state: CapState::Usable,
            outstanding: 0,
        }
    }

    /// Creates a usable child capability.
    pub fn child(
        key: DdlKey,
        kind: CapKindDesc,
        owner: VpeId,
        sel: CapSel,
        parent: DdlKey,
    ) -> Capability {
        Capability { parent: Some(parent), ..Capability::root(key, kind, owner, sel) }
    }

    /// Returns this capability rebound to a different owner selector
    /// (used when a parked capability is finally inserted).
    pub fn with_sel(self, sel: CapSel) -> Capability {
        Capability { sel, ..self }
    }

    /// True if the capability is marked for revocation.
    pub fn revoking(&self) -> bool {
        self.state == CapState::Revoking
    }

    /// The children in creation order (double-ended; revocation sweeps
    /// walk it back-to-front).
    pub fn children(&self) -> crate::childlist::Iter<'_> {
        self.children.iter()
    }

    /// Number of children.
    pub fn child_count(&self) -> usize {
        self.children.len()
    }

    /// True if `child` is registered.
    pub fn has_child(&self, child: DdlKey) -> bool {
        self.children.contains(child)
    }

    /// Registers a child reference (idempotent). O(1).
    pub fn add_child(&mut self, child: DdlKey) {
        self.children.push_back(child);
    }

    /// Removes a child reference; returns true if it was present. O(1)
    /// regardless of the child list's width (see [`crate::ChildList`]).
    pub fn remove_child(&mut self, child: DdlKey) -> bool {
        self.children.remove(child)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::msg::Perms;
    use semper_base::{CapType, PeId};

    fn key(n: u32) -> DdlKey {
        DdlKey::new(PeId(0), VpeId(0), CapType::Memory, n)
    }

    fn mem_desc() -> CapKindDesc {
        CapKindDesc::Memory { addr: 0, size: 4096, perms: Perms::RW }
    }

    #[test]
    fn root_has_no_parent() {
        let c = Capability::root(key(0), mem_desc(), VpeId(1), CapSel(2));
        assert_eq!(c.parent, None);
        assert!(!c.revoking());
        assert_eq!(c.outstanding, 0);
    }

    #[test]
    fn child_links_parent() {
        let c = Capability::child(key(1), mem_desc(), VpeId(1), CapSel(2), key(0));
        assert_eq!(c.parent, Some(key(0)));
    }

    #[test]
    fn add_child_is_idempotent() {
        let mut c = Capability::root(key(0), mem_desc(), VpeId(1), CapSel(2));
        c.add_child(key(1));
        c.add_child(key(1));
        assert_eq!(c.children().collect::<Vec<_>>(), vec![key(1)]);
        assert!(c.has_child(key(1)));
    }

    #[test]
    fn remove_child_reports_presence() {
        let mut c = Capability::root(key(0), mem_desc(), VpeId(1), CapSel(2));
        c.add_child(key(1));
        assert!(c.remove_child(key(1)));
        assert!(!c.remove_child(key(1)));
        assert_eq!(c.child_count(), 0);
        assert!(!c.has_child(key(1)));
    }

    #[test]
    fn children_keep_creation_order() {
        let mut c = Capability::root(key(0), mem_desc(), VpeId(1), CapSel(2));
        c.add_child(key(3));
        c.add_child(key(1));
        c.add_child(key(2));
        assert_eq!(c.children().collect::<Vec<_>>(), vec![key(3), key(1), key(2)]);
    }

    #[test]
    fn with_sel_rebinds_selector_only() {
        let c = Capability::child(key(1), mem_desc(), VpeId(1), CapSel::INVALID, key(0));
        let c = c.with_sel(CapSel(9));
        assert_eq!(c.sel, CapSel(9));
        assert_eq!(c.parent, Some(key(0)));
        assert_eq!(c.key, key(1));
    }
}
