//! The capability object.
//!
//! From the kernel's perspective (§3.4) a capability references a kernel
//! object (the resource), a VPE (the holder), and other capabilities
//! (parent and children in the mapping database). In SemperOS those
//! references are DDL keys so they can cross kernel boundaries; in M3
//! baseline mode the same structure is used but lookups skip the DDL
//! decode cost.
//!
//! # Child-list determinism contract
//!
//! The child list is an insertion-ordered `Vec`: children appear in
//! creation order, and revocation walks them in that order — this is
//! protocol-visible (it fixes the order of inter-kernel revoke messages)
//! and must never be replaced by hash-ordered iteration. A companion
//! hash set ([`semper_base::RawDdlKey`]-keyed) backs O(1) membership so
//! building wide trees is linear; the pre-refactor `Vec::contains` scan
//! made a 10k-child tree quadratic to build.

use semper_base::msg::CapKindDesc;
use semper_base::{CapSel, DdlKey, DetHashSet, RawDdlKey, VpeId};

/// Lifecycle state of a capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CapState {
    /// Normal state: usable and exchangeable.
    Usable,
    /// Phase 1 of revocation has marked this capability; exchanges
    /// involving it are denied (*pointless* prevention, Table 2) and it
    /// will be deleted once all remote children acknowledged.
    Revoking,
}

/// A capability: the unit of authority.
#[derive(Debug, Clone)]
pub struct Capability {
    /// Globally valid address of this capability.
    pub key: DdlKey,
    /// Description of the resource this capability grants access to.
    pub kind: CapKindDesc,
    /// The VPE holding this capability.
    pub owner: VpeId,
    /// Selector in the owner's capability table.
    pub sel: CapSel,
    /// Parent in the capability tree (`None` for root capabilities).
    pub parent: Option<DdlKey>,
    /// Children in the capability tree, in creation order (the
    /// protocol-visible order; see the module docs). Kept in sync with
    /// `child_set` by [`Capability::add_child`] / [`Capability::remove_child`].
    children: Vec<DdlKey>,
    /// O(1) membership index over `children`.
    child_set: DetHashSet<RawDdlKey>,
    /// Lifecycle state.
    pub state: CapState,
    /// Outstanding inter-kernel revoke replies for this capability
    /// (Algorithm 1's per-capability counter).
    pub outstanding: u32,
}

impl Capability {
    /// Creates a usable root capability (no parent).
    pub fn root(key: DdlKey, kind: CapKindDesc, owner: VpeId, sel: CapSel) -> Capability {
        Capability {
            key,
            kind,
            owner,
            sel,
            parent: None,
            children: Vec::new(),
            child_set: DetHashSet::default(),
            state: CapState::Usable,
            outstanding: 0,
        }
    }

    /// Creates a usable child capability.
    pub fn child(
        key: DdlKey,
        kind: CapKindDesc,
        owner: VpeId,
        sel: CapSel,
        parent: DdlKey,
    ) -> Capability {
        Capability { parent: Some(parent), ..Capability::root(key, kind, owner, sel) }
    }

    /// Returns this capability rebound to a different owner selector
    /// (used when a parked capability is finally inserted).
    pub fn with_sel(self, sel: CapSel) -> Capability {
        Capability { sel, ..self }
    }

    /// True if the capability is marked for revocation.
    pub fn revoking(&self) -> bool {
        self.state == CapState::Revoking
    }

    /// The children in creation order.
    pub fn children(&self) -> &[DdlKey] {
        &self.children
    }

    /// True if `child` is registered.
    pub fn has_child(&self, child: DdlKey) -> bool {
        self.child_set.contains(&child.raw())
    }

    /// Registers a child reference (idempotent).
    pub fn add_child(&mut self, child: DdlKey) {
        if self.child_set.insert(child.raw()) {
            self.children.push(child);
        }
    }

    /// Removes a child reference; returns true if it was present.
    pub fn remove_child(&mut self, child: DdlKey) -> bool {
        if !self.child_set.remove(&child.raw()) {
            return false;
        }
        let i = self.children.iter().position(|c| *c == child).expect("child set and list in sync");
        self.children.remove(i);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::msg::Perms;
    use semper_base::{CapType, PeId};

    fn key(n: u32) -> DdlKey {
        DdlKey::new(PeId(0), VpeId(0), CapType::Memory, n)
    }

    fn mem_desc() -> CapKindDesc {
        CapKindDesc::Memory { addr: 0, size: 4096, perms: Perms::RW }
    }

    #[test]
    fn root_has_no_parent() {
        let c = Capability::root(key(0), mem_desc(), VpeId(1), CapSel(2));
        assert_eq!(c.parent, None);
        assert!(!c.revoking());
        assert_eq!(c.outstanding, 0);
    }

    #[test]
    fn child_links_parent() {
        let c = Capability::child(key(1), mem_desc(), VpeId(1), CapSel(2), key(0));
        assert_eq!(c.parent, Some(key(0)));
    }

    #[test]
    fn add_child_is_idempotent() {
        let mut c = Capability::root(key(0), mem_desc(), VpeId(1), CapSel(2));
        c.add_child(key(1));
        c.add_child(key(1));
        assert_eq!(c.children(), &[key(1)]);
        assert!(c.has_child(key(1)));
    }

    #[test]
    fn remove_child_reports_presence() {
        let mut c = Capability::root(key(0), mem_desc(), VpeId(1), CapSel(2));
        c.add_child(key(1));
        assert!(c.remove_child(key(1)));
        assert!(!c.remove_child(key(1)));
        assert!(c.children().is_empty());
        assert!(!c.has_child(key(1)));
    }

    #[test]
    fn children_keep_creation_order() {
        let mut c = Capability::root(key(0), mem_desc(), VpeId(1), CapSel(2));
        c.add_child(key(3));
        c.add_child(key(1));
        c.add_child(key(2));
        assert_eq!(c.children(), &[key(3), key(1), key(2)]);
    }

    #[test]
    fn with_sel_rebinds_selector_only() {
        let c = Capability::child(key(1), mem_desc(), VpeId(1), CapSel::INVALID, key(0));
        let c = c.with_sel(CapSel(9));
        assert_eq!(c.sel, CapSel(9));
        assert_eq!(c.parent, Some(key(0)));
        assert_eq!(c.key, key(1));
    }
}
