//! Per-VPE capability tables.
//!
//! Each VPE has its own capability space (§2.2): a mapping from selectors
//! (small VPE-local integers) to DDL keys. The kernel owns these tables;
//! VPEs only ever see selectors.

use semper_base::{CapSel, Code, DdlKey, Error, Result};
use std::collections::BTreeMap;

/// One VPE's capability space.
#[derive(Debug, Default, Clone)]
pub struct CapTable {
    slots: BTreeMap<CapSel, DdlKey>,
    next_sel: u32,
}

impl CapTable {
    /// Creates an empty table.
    ///
    /// Selectors below `first_free` are reserved for well-known
    /// capabilities (the VPE's own cap, its syscall gate, ...), mirroring
    /// M3's convention.
    pub fn new(first_free: u32) -> CapTable {
        CapTable { slots: BTreeMap::new(), next_sel: first_free }
    }

    /// Allocates the next free selector.
    pub fn alloc_sel(&mut self) -> CapSel {
        loop {
            let sel = CapSel(self.next_sel);
            self.next_sel += 1;
            if !self.slots.contains_key(&sel) {
                return sel;
            }
        }
    }

    /// Binds `sel` to `key`.
    ///
    /// Fails with [`Code::Exists`] if the selector is occupied.
    pub fn insert(&mut self, sel: CapSel, key: DdlKey) -> Result<()> {
        if self.slots.contains_key(&sel) {
            return Err(Error::new(Code::Exists));
        }
        self.slots.insert(sel, key);
        Ok(())
    }

    /// Allocates a selector and binds it to `key` in one step.
    pub fn insert_new(&mut self, key: DdlKey) -> CapSel {
        let sel = self.alloc_sel();
        self.slots.insert(sel, key);
        sel
    }

    /// Looks up the key bound to `sel`.
    pub fn get(&self, sel: CapSel) -> Result<DdlKey> {
        self.slots.get(&sel).copied().ok_or_else(|| Error::new(Code::NoSuchCap))
    }

    /// Removes the binding for `sel`; returns the key if it existed.
    pub fn remove(&mut self, sel: CapSel) -> Option<DdlKey> {
        self.slots.remove(&sel)
    }

    /// Removes the binding pointing at `key` (reverse removal used when a
    /// revoke deletes by DDL key).
    pub fn remove_key(&mut self, key: DdlKey) -> Option<CapSel> {
        let sel = self.slots.iter().find(|(_, k)| **k == key).map(|(s, _)| *s)?;
        self.slots.remove(&sel);
        Some(sel)
    }

    /// Number of occupied selectors.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no selectors are occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(selector, key)` pairs in selector order.
    pub fn iter(&self) -> impl Iterator<Item = (CapSel, DdlKey)> + '_ {
        self.slots.iter().map(|(s, k)| (*s, *k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::{CapType, PeId, VpeId};

    fn key(n: u32) -> DdlKey {
        DdlKey::new(PeId(0), VpeId(0), CapType::Memory, n)
    }

    #[test]
    fn alloc_skips_reserved_range() {
        let mut t = CapTable::new(4);
        assert_eq!(t.alloc_sel(), CapSel(4));
        assert_eq!(t.alloc_sel(), CapSel(5));
    }

    #[test]
    fn insert_and_get() {
        let mut t = CapTable::new(0);
        t.insert(CapSel(1), key(9)).unwrap();
        assert_eq!(t.get(CapSel(1)).unwrap(), key(9));
        assert_eq!(t.get(CapSel(2)).unwrap_err().code(), Code::NoSuchCap);
    }

    #[test]
    fn double_insert_fails() {
        let mut t = CapTable::new(0);
        t.insert(CapSel(1), key(1)).unwrap();
        assert_eq!(t.insert(CapSel(1), key(2)).unwrap_err().code(), Code::Exists);
    }

    #[test]
    fn alloc_skips_occupied() {
        let mut t = CapTable::new(0);
        t.insert(CapSel(0), key(0)).unwrap();
        t.insert(CapSel(1), key(1)).unwrap();
        assert_eq!(t.alloc_sel(), CapSel(2));
    }

    #[test]
    fn remove_key_reverse_lookup() {
        let mut t = CapTable::new(0);
        let s = t.insert_new(key(5));
        assert_eq!(t.remove_key(key(5)), Some(s));
        assert_eq!(t.remove_key(key(5)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn iter_in_selector_order() {
        let mut t = CapTable::new(0);
        t.insert(CapSel(3), key(3)).unwrap();
        t.insert(CapSel(1), key(1)).unwrap();
        let sels: Vec<_> = t.iter().map(|(s, _)| s).collect();
        assert_eq!(sels, vec![CapSel(1), CapSel(3)]);
    }

    #[test]
    fn len_tracks_occupancy() {
        let mut t = CapTable::new(0);
        assert_eq!(t.len(), 0);
        t.insert_new(key(1));
        t.insert_new(key(2));
        assert_eq!(t.len(), 2);
        t.remove(CapSel(0));
        assert_eq!(t.len(), 1);
    }
}
