//! Per-VPE capability tables.
//!
//! Each VPE has its own capability space (§2.2): a mapping from selectors
//! (small VPE-local integers) to DDL keys. The kernel owns these tables;
//! VPEs only ever see selectors.
//!
//! # Performance and determinism
//!
//! The table is the owner-side bottleneck of revocation sweeps: every
//! capability deleted by a sweep must drop its owner's selector binding,
//! addressed *by DDL key*. The forward map (`selector → key`) stays a
//! `BTreeMap` because selector-ordered iteration is protocol-visible
//! (VPE teardown revokes in selector order); a reverse index
//! (`packed key → selector`, [`semper_base::RawDdlKey`]) makes
//! [`CapTable::remove_key`] O(log n) instead of a linear scan — the
//! pre-refactor scan made large revocations quadratic in table size.
//! Freed selectors go to a LIFO free list so long-running workloads
//! (nginx churning per-request capabilities) no longer leak selector
//! space.

use semper_base::{CapSel, Code, DdlKey, DetHashMap, Error, RawDdlKey, Result};
use std::collections::BTreeMap;

/// One VPE's capability space.
#[derive(Debug, Default, Clone)]
pub struct CapTable {
    slots: BTreeMap<CapSel, DdlKey>,
    /// Reverse index for O(1) key → selector resolution during sweeps.
    by_key: DetHashMap<RawDdlKey, CapSel>,
    /// Selectors freed by removals, reused LIFO. Never contains
    /// selectors below `first_free` (those are reserved).
    free: Vec<u32>,
    first_free: u32,
    next_sel: u32,
}

impl CapTable {
    /// Creates an empty table.
    ///
    /// Selectors below `first_free` are reserved for well-known
    /// capabilities (the VPE's own cap, its syscall gate, ...), mirroring
    /// M3's convention.
    pub fn new(first_free: u32) -> CapTable {
        CapTable {
            slots: BTreeMap::new(),
            by_key: DetHashMap::default(),
            free: Vec::new(),
            first_free,
            next_sel: first_free,
        }
    }

    /// Rebuilds a table from migrated state: the transferred selector
    /// bindings plus the source table's selector-space high-water mark,
    /// so selectors handed out after the migration never collide with
    /// ones the previous owner allocated. The source's free list is not
    /// transferred — gaps below `next_sel` are simply skipped, which is
    /// deterministic (allocation continues from the high-water mark).
    pub fn rehydrate(
        first_free: u32,
        next_sel: u32,
        pairs: impl Iterator<Item = (CapSel, DdlKey)>,
    ) -> CapTable {
        let mut table = CapTable::new(first_free);
        table.next_sel = next_sel.max(first_free);
        for (sel, key) in pairs {
            table.insert(sel, key).expect("migrated selectors are unique");
        }
        table
    }

    /// Allocates the next free selector: the most recently freed one if
    /// any (LIFO reuse keeps tables dense), else a fresh one.
    pub fn alloc_sel(&mut self) -> CapSel {
        while let Some(sel) = self.free.pop() {
            // A freed selector can have been re-occupied by an explicit
            // `insert` in the meantime; skip those.
            if !self.slots.contains_key(&CapSel(sel)) {
                return CapSel(sel);
            }
        }
        loop {
            let sel = CapSel(self.next_sel);
            self.next_sel += 1;
            if !self.slots.contains_key(&sel) {
                return sel;
            }
        }
    }

    /// Binds `sel` to `key`.
    ///
    /// Fails with [`Code::Exists`] if the selector is occupied.
    pub fn insert(&mut self, sel: CapSel, key: DdlKey) -> Result<()> {
        if self.slots.contains_key(&sel) {
            return Err(Error::new(Code::Exists));
        }
        let prev = self.by_key.insert(key.raw(), sel);
        debug_assert!(prev.is_none(), "DDL key bound to two selectors in one table");
        self.slots.insert(sel, key);
        Ok(())
    }

    /// Allocates a selector and binds it to `key` in one step.
    pub fn insert_new(&mut self, key: DdlKey) -> CapSel {
        let sel = self.alloc_sel();
        self.insert(sel, key).expect("alloc_sel returned a free selector");
        sel
    }

    /// Looks up the key bound to `sel`.
    pub fn get(&self, sel: CapSel) -> Result<DdlKey> {
        self.slots.get(&sel).copied().ok_or_else(|| Error::new(Code::NoSuchCap))
    }

    /// Removes the binding for `sel`; returns the key if it existed.
    pub fn remove(&mut self, sel: CapSel) -> Option<DdlKey> {
        let key = self.slots.remove(&sel)?;
        self.by_key.remove(&key.raw());
        self.release(sel);
        Some(key)
    }

    /// Removes the binding pointing at `key` (reverse removal used when a
    /// revoke deletes by DDL key). O(log n) via the reverse index; the
    /// pre-refactor implementation scanned the whole table.
    pub fn remove_key(&mut self, key: DdlKey) -> Option<CapSel> {
        let sel = self.by_key.remove(&key.raw())?;
        let bound = self.slots.remove(&sel);
        debug_assert_eq!(bound, Some(key), "reverse index out of sync");
        self.release(sel);
        Some(sel)
    }

    /// Returns a selector to the free list (reserved ones stay reserved).
    fn release(&mut self, sel: CapSel) {
        if sel.0 >= self.first_free {
            self.free.push(sel.0);
        }
    }

    /// Number of occupied selectors.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no selectors are occupied.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Iterates over `(selector, key)` pairs in selector order.
    pub fn iter(&self) -> impl Iterator<Item = (CapSel, DdlKey)> + '_ {
        self.slots.iter().map(|(s, k)| (*s, *k))
    }

    /// Highest selector ever handed out plus one — the size of the
    /// selector space consumed so far (diagnostics; bounded even under
    /// churn thanks to the free list).
    pub fn selector_space(&self) -> u32 {
        self.next_sel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::{CapType, PeId, VpeId};

    fn key(n: u32) -> DdlKey {
        DdlKey::new(PeId(0), VpeId(0), CapType::Memory, n)
    }

    #[test]
    fn alloc_skips_reserved_range() {
        let mut t = CapTable::new(4);
        assert_eq!(t.alloc_sel(), CapSel(4));
        assert_eq!(t.alloc_sel(), CapSel(5));
    }

    #[test]
    fn insert_and_get() {
        let mut t = CapTable::new(0);
        t.insert(CapSel(1), key(9)).unwrap();
        assert_eq!(t.get(CapSel(1)).unwrap(), key(9));
        assert_eq!(t.get(CapSel(2)).unwrap_err().code(), Code::NoSuchCap);
    }

    #[test]
    fn double_insert_fails() {
        let mut t = CapTable::new(0);
        t.insert(CapSel(1), key(1)).unwrap();
        assert_eq!(t.insert(CapSel(1), key(2)).unwrap_err().code(), Code::Exists);
    }

    #[test]
    fn alloc_skips_occupied() {
        let mut t = CapTable::new(0);
        t.insert(CapSel(0), key(0)).unwrap();
        t.insert(CapSel(1), key(1)).unwrap();
        assert_eq!(t.alloc_sel(), CapSel(2));
    }

    #[test]
    fn remove_key_reverse_lookup() {
        let mut t = CapTable::new(0);
        let s = t.insert_new(key(5));
        assert_eq!(t.remove_key(key(5)), Some(s));
        assert_eq!(t.remove_key(key(5)), None);
        assert!(t.is_empty());
    }

    #[test]
    fn iter_in_selector_order() {
        let mut t = CapTable::new(0);
        t.insert(CapSel(3), key(3)).unwrap();
        t.insert(CapSel(1), key(1)).unwrap();
        let sels: Vec<_> = t.iter().map(|(s, _)| s).collect();
        assert_eq!(sels, vec![CapSel(1), CapSel(3)]);
    }

    #[test]
    fn len_tracks_occupancy() {
        let mut t = CapTable::new(0);
        assert_eq!(t.len(), 0);
        t.insert_new(key(1));
        t.insert_new(key(2));
        assert_eq!(t.len(), 2);
        t.remove(CapSel(0));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn freed_selectors_are_reused() {
        // Regression test for unbounded selector growth: before the free
        // list, every alloc consumed a fresh selector even when the
        // table kept a constant size (long-running nginx churn).
        let mut t = CapTable::new(2);
        for i in 0..10_000u32 {
            let sel = t.insert_new(key(i));
            assert!(t.remove_key(key(i)).is_some(), "remove {i}");
            assert!(sel.0 < 3, "selector space leaked: {sel}");
        }
        assert_eq!(t.selector_space(), 3);
        assert!(t.is_empty());
    }

    #[test]
    fn reuse_is_lifo() {
        let mut t = CapTable::new(0);
        let a = t.insert_new(key(1));
        let b = t.insert_new(key(2));
        t.remove(a);
        t.remove(b);
        // Most recently freed first.
        assert_eq!(t.alloc_sel(), b);
        assert_eq!(t.alloc_sel(), a);
    }

    #[test]
    fn reserved_selectors_never_reused() {
        let mut t = CapTable::new(2);
        t.insert(CapSel(0), key(0)).unwrap();
        t.remove(CapSel(0));
        // Selector 0 is reserved; allocation starts at 2.
        assert_eq!(t.alloc_sel(), CapSel(2));
    }

    #[test]
    fn manual_insert_into_freed_selector() {
        let mut t = CapTable::new(0);
        let a = t.insert_new(key(1));
        t.remove(a);
        // Explicitly re-occupy the freed selector; alloc must skip it.
        t.insert(a, key(2)).unwrap();
        assert_ne!(t.alloc_sel(), a);
    }

    #[test]
    fn remove_returns_key_and_clears_reverse_index() {
        let mut t = CapTable::new(0);
        let s = t.insert_new(key(7));
        assert_eq!(t.remove(s), Some(key(7)));
        assert_eq!(t.remove_key(key(7)), None);
    }
}
