//! DDL key allocation.
//!
//! A DDL key names its creator `(PE, VPE)` plus a per-creator object id.
//! The kernel allocates object ids from a monotone counter per creator
//! VPE; uniqueness of keys then follows from uniqueness of the counter,
//! with no cross-kernel coordination — the point of the DDL scheme.

use semper_base::{CapType, DdlKey, DetHashMap, PeId, VpeId};

/// Allocates fresh DDL keys for objects created on behalf of local VPEs.
///
/// The counter map is hash-backed (never iterated): key allocation sits
/// on the capability-creation hot path.
#[derive(Debug, Default, Clone)]
pub struct KeyAllocator {
    next_id: DetHashMap<VpeId, u32>,
    next_promise_id: DetHashMap<VpeId, u32>,
}

impl KeyAllocator {
    /// Creates an empty allocator.
    pub fn new() -> KeyAllocator {
        KeyAllocator::default()
    }

    /// Allocates a key for a new object of type `ty` created by
    /// `(pe, vpe)`.
    ///
    /// # Panics
    ///
    /// Panics if a single VPE exhausts the 24-bit object-id space (16.7M
    /// objects) — far beyond any workload in this reproduction.
    pub fn alloc(&mut self, pe: PeId, vpe: VpeId, ty: CapType) -> DdlKey {
        let id = self.next_id.entry(vpe).or_insert(0);
        let key = DdlKey::new(pe, vpe, ty, *id);
        *id = id.checked_add(1).expect("object-id space exhausted");
        key
    }

    /// Number of keys ever allocated for `vpe` (promise keys excluded:
    /// they draw from a disjoint id range that never migrates, so the
    /// migration handover resumes only the ordinary counter).
    pub fn allocated(&self, vpe: VpeId) -> u32 {
        self.next_id.get(&vpe).copied().unwrap_or(0)
    }

    /// Allocates a promise key for `(pe, vpe)` (`Feature::PromiseIpc`).
    ///
    /// Promise keys name kernel-internal resolution state, not mapdb
    /// records, and draw their object ids from a separate per-VPE
    /// counter based at [`PROMISE_ID_BASE`] — ordinary allocations are
    /// byte-identical whether or not a workload also creates promises.
    pub fn alloc_promise(&mut self, pe: PeId, vpe: VpeId) -> DdlKey {
        let id = self.next_promise_id.entry(vpe).or_insert(PROMISE_ID_BASE);
        let key = DdlKey::new(pe, vpe, CapType::Promise, *id);
        *id = id.checked_add(1).expect("promise-id space exhausted");
        key
    }

    /// Resumes the counter of a migrated-in VPE at `next` (the value the
    /// previous owner's allocator had reached). Keys allocated after a
    /// migration continue the same per-creator sequence, so global
    /// uniqueness is preserved across ownership handovers.
    pub fn resume(&mut self, vpe: VpeId, next: u32) {
        let prev = self.next_id.insert(vpe, next);
        debug_assert!(prev.is_none(), "resuming {vpe} over live counter state");
    }

    /// Drops the counter state of an exited VPE.
    ///
    /// Safe because keys embed the VPE id: a recycled VPE id would
    /// restart at object id 0, so callers must only recycle VPE ids when
    /// all keys of the old VPE are gone (the kernel revokes everything on
    /// exit).
    pub fn forget(&mut self, vpe: VpeId) {
        self.next_id.remove(&vpe);
        self.next_promise_id.remove(&vpe);
    }
}

/// First object id of the promise-key range (disjoint from ordinary
/// per-VPE object ids, which start at 0 and stay far below this).
pub const PROMISE_ID_BASE: u32 = 0x80_0000;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_ids_per_vpe() {
        let mut a = KeyAllocator::new();
        let k0 = a.alloc(PeId(1), VpeId(7), CapType::Memory);
        let k1 = a.alloc(PeId(1), VpeId(7), CapType::Memory);
        assert_eq!(k0.object_id(), 0);
        assert_eq!(k1.object_id(), 1);
        assert_ne!(k0, k1);
    }

    #[test]
    fn independent_counters_per_vpe() {
        let mut a = KeyAllocator::new();
        let _ = a.alloc(PeId(1), VpeId(1), CapType::Vpe);
        let k = a.alloc(PeId(1), VpeId(2), CapType::Vpe);
        assert_eq!(k.object_id(), 0);
        assert_eq!(a.allocated(VpeId(1)), 1);
        assert_eq!(a.allocated(VpeId(2)), 1);
        assert_eq!(a.allocated(VpeId(3)), 0);
    }

    #[test]
    fn keys_embed_creator() {
        let mut a = KeyAllocator::new();
        let k = a.alloc(PeId(9), VpeId(4), CapType::Session);
        assert_eq!(k.pe(), PeId(9));
        assert_eq!(k.vpe(), VpeId(4));
        assert_eq!(k.cap_type(), Some(CapType::Session));
    }

    #[test]
    fn promise_keys_use_disjoint_range() {
        let mut a = KeyAllocator::new();
        let m = a.alloc(PeId(1), VpeId(7), CapType::Memory);
        let p0 = a.alloc_promise(PeId(1), VpeId(7));
        let p1 = a.alloc_promise(PeId(1), VpeId(7));
        assert_eq!(p0.object_id(), PROMISE_ID_BASE);
        assert_eq!(p1.object_id(), PROMISE_ID_BASE + 1);
        assert_eq!(p0.cap_type(), Some(CapType::Promise));
        // Promise allocation leaves the ordinary sequence untouched.
        assert_eq!(a.allocated(VpeId(7)), 1);
        assert_eq!(a.alloc(PeId(1), VpeId(7), CapType::Memory).object_id(), 1);
        assert_ne!(m, p0);
    }

    #[test]
    fn forget_resets_counter() {
        let mut a = KeyAllocator::new();
        let _ = a.alloc(PeId(0), VpeId(0), CapType::Memory);
        a.forget(VpeId(0));
        assert_eq!(a.allocated(VpeId(0)), 0);
        let k = a.alloc(PeId(0), VpeId(0), CapType::Memory);
        assert_eq!(k.object_id(), 0);
    }
}
