//! The mapping database: all capabilities owned by one kernel.
//!
//! As in other microkernel-based systems (§3.4), the kernel tracks
//! capability sharing in a tree to enable recursive revocation. Here the
//! tree is stored as a flat `DdlKey → Capability` map with explicit
//! parent/child links, because links may point at capabilities owned by
//! *other* kernels — a local pointer structure cannot represent that.
//!
//! # Determinism contract
//!
//! Since the O(1)-bookkeeping refactor the flat map is a hash map keyed
//! on the packed 64-bit key form ([`semper_base::RawDdlKey`]) with the
//! fixed-seed hasher from [`semper_base::hash`] — every lookup, insert,
//! and delete on the revocation hot path is O(1). The map's iteration
//! order is *not* part of the protocol: all protocol-visible orderings
//! come from the explicitly ordered structures — capability child lists
//! (creation order) drive subtree walks, so [`MappingDb::local_subtree`]
//! and [`MappingDb::delete_local_subtree`] yield the same preorder the
//! `BTreeMap`-backed implementation produced. The only whole-map
//! iterations are [`MappingDb::iter`] (diagnostics; unspecified order)
//! and [`MappingDb::check_invariants`] (sorted explicitly so failure
//! reports are stable).

use crate::cap::{CapState, Capability};
use semper_base::{Code, DdlKey, DetHashMap, Error, RawDdlKey, Result};

/// All capabilities owned by one kernel, indexed by packed DDL key.
#[derive(Debug, Default, Clone)]
pub struct MappingDb {
    caps: DetHashMap<RawDdlKey, Capability>,
}

impl MappingDb {
    /// Creates an empty database.
    pub fn new() -> MappingDb {
        MappingDb::default()
    }

    /// Inserts a capability.
    ///
    /// # Panics
    ///
    /// Panics if the key is already present — keys are globally unique by
    /// construction, so a duplicate indicates a kernel bug.
    pub fn insert(&mut self, cap: Capability) {
        let prev = self.caps.insert(cap.key.raw(), cap);
        assert!(prev.is_none(), "duplicate DDL key in mapping database");
    }

    /// Looks up a capability.
    pub fn get(&self, key: DdlKey) -> Result<&Capability> {
        self.caps.get(&key.raw()).ok_or_else(|| Error::new(Code::NoSuchCap))
    }

    /// Looks up a capability mutably.
    pub fn get_mut(&mut self, key: DdlKey) -> Result<&mut Capability> {
        self.caps.get_mut(&key.raw()).ok_or_else(|| Error::new(Code::NoSuchCap))
    }

    /// True if the key is present.
    pub fn contains(&self, key: DdlKey) -> bool {
        self.caps.contains_key(&key.raw())
    }

    /// Removes a capability, returning it.
    pub fn remove(&mut self, key: DdlKey) -> Option<Capability> {
        self.caps.remove(&key.raw())
    }

    /// Number of capabilities in the database.
    pub fn len(&self) -> usize {
        self.caps.len()
    }

    /// True if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.caps.is_empty()
    }

    /// Iterates over all capabilities in unspecified (but per-run
    /// deterministic) order. Diagnostics only — protocol code must walk
    /// the tree via child lists instead.
    pub fn iter(&self) -> impl Iterator<Item = &Capability> {
        self.caps.values()
    }

    /// Registers `child` in `parent`'s child list (both may be remote;
    /// this touches only the local parent).
    pub fn link_child(&mut self, parent: DdlKey, child: DdlKey) -> Result<()> {
        self.get_mut(parent)?.add_child(child);
        Ok(())
    }

    /// Drops `child` from `parent`'s child list, if the parent still
    /// exists locally. Returns whether the link existed.
    pub fn unlink_child(&mut self, parent: DdlKey, child: DdlKey) -> bool {
        match self.caps.get_mut(&parent.raw()) {
            Some(p) => p.remove_child(child),
            None => false,
        }
    }

    /// Marks the capability for revocation. Returns the previous state so
    /// callers can detect concurrent revokes (`Revoking` already set).
    pub fn mark_revoking(&mut self, key: DdlKey) -> Result<CapState> {
        let cap = self.get_mut(key)?;
        let prev = cap.state;
        cap.state = CapState::Revoking;
        Ok(prev)
    }

    /// Collects the *locally owned* subtree rooted at `key` in preorder,
    /// plus the list of remote children encountered (children whose
    /// capabilities are not in this database).
    ///
    /// Used by the revocation protocol: local capabilities are marked and
    /// later swept; remote children each trigger an inter-kernel call.
    pub fn local_subtree(&self, key: DdlKey) -> (Vec<DdlKey>, Vec<DdlKey>) {
        let mut local = Vec::new();
        let mut remote = Vec::new();
        let mut stack = vec![key];
        while let Some(k) = stack.pop() {
            match self.caps.get(&k.raw()) {
                Some(cap) => {
                    local.push(k);
                    // Reverse keeps preorder left-to-right after pop().
                    for child in cap.children().rev() {
                        stack.push(child);
                    }
                }
                None => remote.push(k),
            }
        }
        (local, remote)
    }

    /// Deletes the locally owned subtree rooted at `key`, unlinking the
    /// root from its (possibly local) parent. Returns the deleted
    /// capabilities in deletion order.
    pub fn delete_local_subtree(&mut self, key: DdlKey) -> Vec<Capability> {
        let mut stack = Vec::new();
        let mut deleted = Vec::new();
        self.delete_local_subtree_into(key, &mut stack, &mut deleted);
        deleted
    }

    /// [`MappingDb::delete_local_subtree`] with caller-provided buffers:
    /// the walk stack and the deleted-capability collection are reused
    /// across calls, so a teardown revoking thousands of subtrees stops
    /// paying two allocations per revoke. `stack` must be empty;
    /// `deleted` is appended to (callers batching several roots drain it
    /// between roots or at the end). Deletion order is the same preorder
    /// [`MappingDb::local_subtree`] yields; remote children are skipped.
    pub fn delete_local_subtree_into(
        &mut self,
        key: DdlKey,
        stack: &mut Vec<DdlKey>,
        deleted: &mut Vec<Capability>,
    ) {
        debug_assert!(stack.is_empty());
        if let Some(root) = self.caps.get(&key.raw()) {
            if let Some(parent) = root.parent {
                self.unlink_child(parent, key);
            }
        }
        stack.push(key);
        while let Some(k) = stack.pop() {
            // Remote children are not in this database: skipped, exactly
            // as the collect-then-remove implementation skipped them.
            if let Some(cap) = self.caps.remove(&k.raw()) {
                // Reverse keeps preorder left-to-right after pop().
                for child in cap.children().rev() {
                    stack.push(child);
                }
                deleted.push(cap);
            }
        }
    }

    /// Checks structural invariants; returns a description of the first
    /// violation (in ascending key order, so reports are stable).
    /// Test-and-debug aid used by the property tests:
    ///
    /// 1. Every local child reference of a local capability points back
    ///    via `parent`.
    /// 2. Every local capability with a local parent is in that parent's
    ///    child list.
    /// 3. No capability is its own ancestor (tree, not graph).
    pub fn check_invariants(&self) -> core::result::Result<(), String> {
        let mut raws: Vec<RawDdlKey> = self.caps.keys().copied().collect();
        raws.sort_unstable();
        for raw in raws {
            let cap = &self.caps[&raw];
            for child in cap.children() {
                if let Some(c) = self.caps.get(&child.raw()) {
                    if c.parent != Some(cap.key) {
                        return Err(format!(
                            "child {child:?} of {key:?} has parent {parent:?}",
                            key = cap.key,
                            parent = c.parent
                        ));
                    }
                }
            }
            if let Some(parent) = cap.parent {
                if let Some(p) = self.caps.get(&parent.raw()) {
                    if !p.has_child(cap.key) {
                        return Err(format!(
                            "{key:?} not in parent {parent:?} child list",
                            key = cap.key
                        ));
                    }
                }
            }
            // Walk up; local chains are short, remote parents terminate.
            let mut seen = vec![cap.key];
            let mut cur = cap.parent;
            while let Some(k) = cur {
                if seen.contains(&k) {
                    return Err(format!("cycle through {k:?}"));
                }
                seen.push(k);
                cur = self.caps.get(&k.raw()).and_then(|c| c.parent);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use semper_base::msg::{CapKindDesc, Perms};
    use semper_base::{CapSel, CapType, PeId, VpeId};

    fn key(n: u32) -> DdlKey {
        DdlKey::new(PeId(0), VpeId(0), CapType::Memory, n)
    }

    fn remote_key(n: u32) -> DdlKey {
        DdlKey::new(PeId(99), VpeId(9), CapType::Memory, n)
    }

    fn mem() -> CapKindDesc {
        CapKindDesc::Memory { addr: 0, size: 64, perms: Perms::RW }
    }

    fn root(db: &mut MappingDb, k: DdlKey) {
        db.insert(Capability::root(k, mem(), VpeId(0), CapSel(0)));
    }

    fn child(db: &mut MappingDb, k: DdlKey, parent: DdlKey) {
        db.insert(Capability::child(k, mem(), VpeId(0), CapSel(0), parent));
        db.link_child(parent, k).unwrap();
    }

    #[test]
    fn insert_get_remove() {
        let mut db = MappingDb::new();
        root(&mut db, key(0));
        assert!(db.contains(key(0)));
        assert_eq!(db.get(key(0)).unwrap().key, key(0));
        assert!(db.remove(key(0)).is_some());
        assert_eq!(db.get(key(0)).unwrap_err().code(), Code::NoSuchCap);
    }

    #[test]
    #[should_panic(expected = "duplicate DDL key")]
    fn duplicate_insert_panics() {
        let mut db = MappingDb::new();
        root(&mut db, key(0));
        root(&mut db, key(0));
    }

    #[test]
    fn subtree_collection_preorder() {
        let mut db = MappingDb::new();
        root(&mut db, key(0));
        child(&mut db, key(1), key(0));
        child(&mut db, key(2), key(0));
        child(&mut db, key(3), key(1));
        let (local, remote) = db.local_subtree(key(0));
        assert_eq!(local, vec![key(0), key(1), key(3), key(2)]);
        assert!(remote.is_empty());
    }

    #[test]
    fn subtree_reports_remote_children() {
        let mut db = MappingDb::new();
        root(&mut db, key(0));
        child(&mut db, key(1), key(0));
        db.link_child(key(0), remote_key(7)).unwrap();
        let (local, remote) = db.local_subtree(key(0));
        assert_eq!(local, vec![key(0), key(1)]);
        assert_eq!(remote, vec![remote_key(7)]);
    }

    #[test]
    fn delete_local_subtree_unlinks_from_parent() {
        let mut db = MappingDb::new();
        root(&mut db, key(0));
        child(&mut db, key(1), key(0));
        child(&mut db, key(2), key(1));
        let deleted = db.delete_local_subtree(key(1));
        assert_eq!(deleted.len(), 2);
        assert!(db.contains(key(0)));
        assert!(!db.contains(key(1)));
        assert!(!db.contains(key(2)));
        assert_eq!(db.get(key(0)).unwrap().child_count(), 0);
        db.check_invariants().unwrap();
    }

    #[test]
    fn mark_revoking_reports_previous_state() {
        let mut db = MappingDb::new();
        root(&mut db, key(0));
        assert_eq!(db.mark_revoking(key(0)).unwrap(), CapState::Usable);
        assert_eq!(db.mark_revoking(key(0)).unwrap(), CapState::Revoking);
        assert!(db.get(key(0)).unwrap().revoking());
    }

    #[test]
    fn invariants_catch_dangling_parent_link() {
        let mut db = MappingDb::new();
        root(&mut db, key(0));
        // Child claims key(0) as parent but parent does not list it.
        db.insert(Capability::child(key(1), mem(), VpeId(0), CapSel(0), key(0)));
        assert!(db.check_invariants().is_err());
    }

    #[test]
    fn invariants_ok_with_remote_parent() {
        let mut db = MappingDb::new();
        db.insert(Capability::child(key(1), mem(), VpeId(0), CapSel(0), remote_key(3)));
        db.check_invariants().unwrap();
    }

    #[test]
    fn unlink_missing_parent_is_noop() {
        let mut db = MappingDb::new();
        assert!(!db.unlink_child(key(0), key(1)));
    }

    #[test]
    fn preorder_is_stable_at_scale() {
        // The subtree walk must not depend on map order: build a two-level
        // tree and check the preorder twice, including after unrelated
        // insert/remove churn that would perturb a hash map's iteration.
        let mut db = MappingDb::new();
        root(&mut db, key(0));
        for i in 1..=50 {
            child(&mut db, key(i), key(0));
        }
        let (before, _) = db.local_subtree(key(0));
        for i in 100..200 {
            root(&mut db, key(i));
        }
        for i in 100..200 {
            db.remove(key(i));
        }
        let (after, _) = db.local_subtree(key(0));
        assert_eq!(before, after);
        assert_eq!(before.len(), 51);
    }
}
