//! Table 3: runtimes of capability operations (cycles).
//!
//! Two applications on a small machine; the second obtains a capability
//! from the first, then the first revokes it. Group-local uses one
//! kernel for both; group-spanning uses two kernels. The M3 baseline
//! runs the single-kernel mode with plain capability references.

use semper_base::KernelMode;
use semper_bench::{banner, dev};
use semperos::experiment::MicroMachine;

fn main() {
    banner("Table 3: runtimes of capability operations", "Table 3");

    let ex_local = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_exchange_local();
    let ex_span = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_exchange_spanning();
    let rv_local = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_revoke_local();
    let rv_span = MicroMachine::new(2, 2, KernelMode::SemperOS).measure_revoke_spanning();
    let m3_ex = MicroMachine::new(1, 2, KernelMode::M3).measure_exchange_local();
    let m3_rv = MicroMachine::new(1, 2, KernelMode::M3).measure_revoke_local();

    println!(
        "{:<10} {:<9} {:>9} {:>8} {:>7} | {:>8} {:>7}",
        "Operation", "Scope", "SemperOS", "paper", "dev", "M3", "paper"
    );
    println!(
        "{:<10} {:<9} {:>9} {:>8} {:>7} | {:>8} {:>7}",
        "Exchange",
        "Local",
        ex_local,
        3597,
        dev(ex_local as f64, 3597.0),
        m3_ex,
        3250
    );
    println!(
        "{:<10} {:<9} {:>9} {:>8} {:>7} | {:>8} {:>7}",
        "Exchange",
        "Spanning",
        ex_span,
        6484,
        dev(ex_span as f64, 6484.0),
        "—",
        "—"
    );
    println!(
        "{:<10} {:<9} {:>9} {:>8} {:>7} | {:>8} {:>7}",
        "Revoke",
        "Local",
        rv_local,
        1997,
        dev(rv_local as f64, 1997.0),
        m3_rv,
        1423
    );
    println!(
        "{:<10} {:<9} {:>9} {:>8} {:>7} | {:>8} {:>7}",
        "Revoke",
        "Spanning",
        rv_span,
        3876,
        dev(rv_span as f64, 3876.0),
        "—",
        "—"
    );
    println!();
    println!(
        "Increase over M3: exchange {:+.1}% (paper +10.7%), revoke {:+.1}% (paper +40.3%)",
        100.0 * (ex_local as f64 - m3_ex as f64) / m3_ex as f64,
        100.0 * (rv_local as f64 - m3_rv as f64) / m3_rv as f64,
    );
}
