//! Table 4: number of capability operations for the selected
//! applications, for 1 and 512 parallel benchmark instances, plus the
//! average rate of capability operations over the runtime.
//!
//! The 512-instance rates use 64 kernels and 64 filesystem services, as
//! in the paper.

use semper_apps::AppKind;
use semper_base::MachineConfig;
use semper_bench::banner;
use semperos::experiment::run_app_instances;

fn main() {
    banner("Table 4: capability operations of the applications", "Table 4");
    println!(
        "{:<9} {:>8} {:>8} {:>10} {:>10} | {:>9} {:>10} {:>11} {:>11}",
        "app", "ops(1)", "paper", "ops/s(1)", "paper", "ops(512)", "paper", "ops/s(512)", "paper"
    );
    let paper_1 = [7_295u64, 4_012, 1_310, 5_987, 8_749, 21_166];
    let paper_512_ops = [10_752u64, 5_632, 1_536, 12_288, 11_264, 19_456];
    let paper_512_rate = [191_703u64, 100_772, 27_096, 207_072, 201_204, 348_285];
    let cfg = MachineConfig::paper_testbed(64, 64);
    for (i, app) in AppKind::ALL.into_iter().enumerate() {
        let r1 = run_app_instances(&cfg, app, 1);
        let r512 = run_app_instances(&cfg, app, 512);
        println!(
            "{:<9} {:>8} {:>8} {:>10.0} {:>10} | {:>9} {:>10} {:>11.0} {:>11}",
            app.name(),
            r1.cap_ops,
            app.paper_cap_ops(),
            r1.cap_ops_per_sec(),
            paper_1[i],
            r512.cap_ops,
            paper_512_ops[i],
            r512.cap_ops_per_sec(),
            paper_512_rate[i],
        );
    }
    println!();
    println!("note: paper 512-instance op counts are 512 x single-instance counts");
    println!("      (e.g. tar 21 x 512 = 10752); rates average over the whole run.");
}
