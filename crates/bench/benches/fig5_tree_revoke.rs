//! Figure 5: parallel revocation of capability trees with different
//! breadths utilizing multiple kernels.
//!
//! One application delegates a capability to many others (e.g. shared
//! memory), producing a tree of one root with N children. The children
//! are distributed over 0, 1, 4, 8, or 12 other kernels ("1 + k
//! Kernels"); revoking the root then proceeds in parallel across the
//! kernels. The paper observes a break-even versus the local case around
//! 80 children at 12 kernels.

use semper_base::KernelMode;
use semper_bench::banner;
use semper_sim::Cycles;
use semperos::pool::MachinePool;

fn main() {
    banner("Figure 5: parallel revocation of capability trees", "Figure 5");
    // All measurements share one pooled 13-group machine.
    let mut pool = MachinePool::new();
    let kernel_counts: [u16; 5] = [0, 1, 4, 8, 12];
    print!("{:<10}", "children");
    for k in kernel_counts {
        print!(" {:>14}", format!("1+{k} kernels"));
    }
    println!("   (revocation time, µs)");
    for children in [1u32, 16, 32, 48, 64, 80, 96, 112, 128] {
        print!("{children:<10}");
        for k in kernel_counts {
            // A machine with 13 groups; group 0 hosts the root VPE.
            let cycles =
                pool.with(13, 12, KernelMode::SemperOS, |m| m.measure_tree_revoke(children, k));
            print!(" {:>14.2}", Cycles(cycles).as_micros());
        }
        println!();
    }
    println!();
    // Break-even check at 128 children: local vs 12 kernels.
    let local = pool.with(13, 12, KernelMode::SemperOS, |m| m.measure_tree_revoke(128, 0));
    let par12 = pool.with(13, 12, KernelMode::SemperOS, |m| m.measure_tree_revoke(128, 12));
    println!(
        "128 children: local {:.2}µs vs 12 kernels {:.2}µs — parallel revocation {}",
        Cycles(local).as_micros(),
        Cycles(par12).as_micros(),
        if par12 < local { "wins (paper: break-even ~80 children)" } else { "does not win yet" }
    );
}
