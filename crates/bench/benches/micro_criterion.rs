//! Criterion microbenchmarks of the core data structures.
//!
//! These measure *host* performance of the building blocks (not
//! simulated cycles): DDL key packing, mapping-database operations, the
//! event queue, and NoC routing. They guard against regressions that
//! would make the big experiments slow to simulate.

use criterion::{criterion_group, criterion_main, Criterion};
use semper_base::msg::{CapKindDesc, Payload, Perms, Syscall};
use semper_base::{CapSel, CapType, CostModel, DdlKey, Msg, PeId, VpeId};
use semper_caps::{Capability, MappingDb};
use semper_noc::{Mesh, Noc};
use semper_sim::{Cycles, EventQueue};
use std::hint::black_box;

fn ddl_keys(c: &mut Criterion) {
    c.bench_function("ddl_key_pack_unpack", |b| {
        b.iter(|| {
            let k = DdlKey::new(
                black_box(PeId(513)),
                black_box(VpeId(42)),
                CapType::Session,
                black_box(123_456),
            );
            black_box((k.pe(), k.vpe(), k.cap_type(), k.object_id()))
        })
    });
}

fn mapdb_subtree(c: &mut Criterion) {
    // A 3-level tree with 85 capabilities.
    fn build() -> MappingDb {
        let mem = CapKindDesc::Memory { addr: 0, size: 64, perms: Perms::RW };
        let mut db = MappingDb::new();
        let mut next = 0u32;
        let key = |n: &mut u32| {
            let k = DdlKey::new(PeId(0), VpeId(0), CapType::Memory, *n);
            *n += 1;
            k
        };
        let root = key(&mut next);
        db.insert(Capability::root(root, mem, VpeId(0), CapSel(0)));
        for _ in 0..4 {
            let mid = key(&mut next);
            db.insert(Capability::child(mid, mem, VpeId(0), CapSel(0), root));
            db.link_child(root, mid).unwrap();
            for _ in 0..20 {
                let leaf = key(&mut next);
                db.insert(Capability::child(leaf, mem, VpeId(0), CapSel(0), mid));
                db.link_child(mid, leaf).unwrap();
            }
        }
        db
    }
    let db = build();
    let root = DdlKey::new(PeId(0), VpeId(0), CapType::Memory, 0);
    c.bench_function("mapdb_local_subtree_85caps", |b| {
        b.iter(|| black_box(db.local_subtree(black_box(root))))
    });
    c.bench_function("mapdb_delete_subtree_85caps", |b| {
        b.iter_batched(
            build,
            |mut db| black_box(db.delete_local_subtree(root)),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1000u64 {
                q.schedule(Cycles(i * 7 % 997), i);
            }
            let mut acc = 0u64;
            while let Some((_, e)) = q.pop() {
                acc = acc.wrapping_add(e);
            }
            black_box(acc)
        })
    });
}

fn noc_route(c: &mut Criterion) {
    let mut noc = Noc::new(Mesh::new(32), CostModel::calibrated());
    let msg = Msg::new(PeId(0), PeId(640 - 1), Payload::sys(0, Syscall::Noop));
    let mut t = Cycles::ZERO;
    c.bench_function("noc_route_single", |b| {
        b.iter(|| {
            t += 1000u64;
            black_box(noc.route(black_box(&msg), t))
        })
    });
}

criterion_group!(benches, ddl_keys, mapdb_subtree, event_queue, noc_route);
criterion_main!(benches);
