//! Figure 9: system efficiency of PostMark and SQLite with different
//! kernel/service configurations, against the total PE count.
//!
//! System efficiency charges the OS's PEs as zero-efficiency: it scales
//! parallel efficiency by `instances / (instances + OS PEs)`. The
//! crossovers tell which configuration to pick for a given machine size
//! (the paper: SQLite at 192 PEs → 16/16, at 256 PEs → 32/16).

use semper_apps::AppKind;
use semper_base::MachineConfig;
use semper_bench::{banner, pct};
use semperos::experiment::{parallel_efficiency, run_app_instances, system_efficiency};

fn main() {
    banner("Figure 9: system efficiency vs machine size", "Figure 9");
    let configs: [(u16, u16); 6] = [(8, 8), (16, 16), (32, 16), (32, 32), (48, 32), (64, 32)];
    let pe_counts = [128u32, 192, 256, 384, 512, 640];
    for app in [AppKind::PostMark, AppKind::Sqlite] {
        println!("--- {} ---", app.name());
        print!("{:<26}", "config \\ total PEs");
        for pes in pe_counts {
            print!(" {pes:>7}");
        }
        println!();
        for (k, s) in configs {
            print!("{:<26}", format!("{k} kernels {s} services"));
            for pes in pe_counts {
                let os = (k + s) as u32;
                if pes <= os + 8 {
                    print!(" {:>7}", "—");
                    continue;
                }
                let instances = pes - os;
                // Keep within the kernel capacity (192 PEs per kernel).
                if (pes as f32 / k as f32) > 192.0 {
                    print!(" {:>7}", "—");
                    continue;
                }
                let mut cfg = MachineConfig::paper_testbed(k, s);
                cfg.num_pes = pes as u16;
                cfg.mesh_width = semper_base::config::mesh_width_for(cfg.num_pes);
                let t1 = run_app_instances(&cfg, app, 1).mean_duration();
                let tn = run_app_instances(&cfg, app, instances).mean_duration();
                let pe_eff = parallel_efficiency(t1, tn);
                print!(" {:>7}", pct(system_efficiency(pe_eff, instances, os as usize)));
            }
            println!();
        }
    }
    println!();
    println!("read column-wise: the best configuration changes with machine");
    println!("size — small machines favour fewer OS PEs, large machines need");
    println!("more kernels to keep the capability subsystem from saturating.");
}
