//! Figure 8: kernel dependence — parallel efficiency of PostMark and
//! LevelDB with a fixed number of services (64) and 4..64 kernels.
//!
//! Paper observations: all applications are sensitive to the number of
//! kernels; PostMark is more susceptible than LevelDB ("LevelDB exhibits
//! smaller improvements when employing more than 16 kernels compared to
//! PostMark").

use semper_apps::AppKind;
use semper_base::MachineConfig;
use semper_bench::{banner, efficiency, pct};

fn main() {
    banner("Figure 8: kernel dependence (64 services)", "Figure 8");
    let kernels = [4u16, 8, 16, 32, 48, 64];
    let counts = [128u32, 256, 384, 512];
    for app in [AppKind::PostMark, AppKind::LevelDb] {
        println!("--- {} ---", app.name());
        print!("{:<22}", "config");
        for n in counts {
            print!(" {n:>7}");
        }
        println!();
        for k in kernels {
            let cfg = MachineConfig::paper_testbed(k, 64);
            print!("{:<22}", format!("{k} kernels 64 services"));
            for n in counts {
                print!(" {:>7}", pct(efficiency(&cfg, app, n)));
            }
            println!();
        }
    }
    println!();
    println!("shape check: efficiency rises with kernel count, and PostMark's");
    println!("gain from more kernels exceeds LevelDB's — the distributed");
    println!("capability subsystem is the scaling bottleneck it relieves.");
}
