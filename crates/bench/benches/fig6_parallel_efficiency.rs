//! Figure 6: parallel efficiency of all six applications using 32
//! kernels and 32 file service instances, for 64 to 512 parallel
//! benchmark instances.
//!
//! Paper result: 70% (SQLite) to 78% (tar) at 512 instances.

use semper_apps::AppKind;
use semper_base::MachineConfig;
use semper_bench::{banner, efficiency, pct};

fn main() {
    banner("Figure 6: parallel efficiency, 32 kernels + 32 services", "Figure 6");
    let counts = [64u32, 128, 192, 256, 320, 384, 448, 512];
    print!("{:<9}", "app");
    for n in counts {
        print!(" {n:>7}");
    }
    println!();
    let cfg = MachineConfig::paper_testbed(32, 32);
    for app in AppKind::ALL {
        print!("{:<9}", app.name());
        for n in counts {
            print!(" {:>7}", pct(efficiency(&cfg, app, n)));
        }
        println!();
    }
    println!();
    println!("paper anchor points at 512 instances: tar 78%, SQLite 70%;");
    println!("all six applications land between 70% and 78% (+/- find, which");
    println!("is metadata-only and sits above the band).");
}
