//! Ablation: the two-way delegate handshake (§4.3.2).
//!
//! Demonstrates what the handshake buys and what it costs:
//!
//! * **Safety** — under a delegate/revoke race, the naive one-way
//!   protocol leaves the receiver holding a capability whose parent was
//!   revoked (*invalid*, Table 2); the two-way handshake never does.
//! * **Cost** — the handshake adds one inter-kernel round trip to every
//!   group-spanning delegate.

use semper_base::config::Feature;
use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, KernelMode, VpeId};
use semper_bench::banner;
use semper_kernel::harness::TestCluster;
use semperos::experiment::MicroMachine;

fn race_leaks(one_way: bool) -> bool {
    let mut c = TestCluster::new(2, 1);
    if one_way {
        for k in &mut c.kernels {
            k.enable_feature_for_test(Feature::OneWayDelegate);
        }
    }
    let r = c.syscall(VpeId(0), Syscall::CreateMem { size: 4096, perms: Perms::RW });
    let Ok(SysReplyData::Mem { sel, .. }) = r.result else { panic!() };
    c.syscall_async(
        VpeId(0),
        Syscall::Exchange {
            other: VpeId(1),
            own_sel: sel,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
    );
    c.pump_n(4);
    let rt = c.syscall_front(VpeId(0), Syscall::Revoke { sel, own: true });
    c.pump_all();
    assert!(c.take_reply(VpeId(0), rt).unwrap().result.is_ok());
    let leaked = c.kernels[1]
        .mapdb()
        .iter()
        .any(|cap| matches!(cap.kind, semper_base::msg::CapKindDesc::Memory { .. }));
    leaked
}

fn delegate_latency(one_way: bool) -> u64 {
    let mut m = MicroMachine::new(2, 2, KernelMode::SemperOS);
    if one_way {
        m.machine().enable_feature_everywhere(Feature::OneWayDelegate);
    }
    let a = m.vpe(0, 0);
    let b = m.vpe(1, 0);
    let sel = m.create_mem(a);
    let (_, cycles) = m.delegate(a, b, sel);
    cycles
}

fn main() {
    banner("Ablation: two-way delegate handshake", "§4.3.2 / Table 2 'Invalid'");
    let two_way_leaks = race_leaks(false);
    let one_way_leaks = race_leaks(true);
    println!("delegate/revoke race leaves an invalid capability:");
    println!("  two-way handshake (SemperOS): {two_way_leaks}   <- must be false");
    println!("  one-way (naive) protocol:     {one_way_leaks}   <- the window the paper closes");
    println!();
    let lat2 = delegate_latency(false);
    let lat1 = delegate_latency(true);
    println!("group-spanning delegate latency:");
    println!("  two-way handshake: {lat2} cycles");
    println!("  one-way protocol:  {lat1} cycles");
    println!(
        "  handshake overhead: {} cycles ({:+.1}%) — the price of ruling out",
        lat2 as i64 - lat1 as i64,
        100.0 * (lat2 as f64 - lat1 as f64) / lat1 as f64
    );
    println!("  invalid capabilities entirely.");
    assert!(!two_way_leaks && one_way_leaks, "ablation must show the window");
}
