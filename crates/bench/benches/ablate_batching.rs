//! Ablation: revoke message batching.
//!
//! §5.2 notes that the tree-revocation results "can be further improved
//! by the use of message batching. So far, the kernel managing the root
//! capability sends out one message for each child capability." This
//! ablation implements exactly that optimisation
//! ([`semper_base::Feature::RevokeBatching`]) and measures the wide-tree
//! revocation with and without it.

use semper_base::config::Feature;
use semper_base::KernelMode;
use semper_bench::banner;
use semper_sim::Cycles;
use semperos::experiment::MicroMachine;
use semperos::pool::MachinePool;

/// The two reusable machines of this ablation. Feature toggles poison a
/// machine for shape-keyed pooling, so the batched variant lives
/// outside the pool as its own long-lived machine — all batched
/// measurements share it, all plain measurements share the pooled one.
struct Machines {
    pool: MachinePool,
    batched: Option<MicroMachine>,
}

fn tree_revoke(m: &mut Machines, children: u32, kernels: u16, batching: bool) -> u64 {
    if batching {
        let bm = m.batched.get_or_insert_with(|| {
            let mut bm = MicroMachine::new(13, 12, KernelMode::SemperOS);
            bm.machine().enable_feature_everywhere(Feature::RevokeBatching);
            bm
        });
        return bm.measure_tree_revoke(children, kernels);
    }
    m.pool.with(13, 12, KernelMode::SemperOS, |pm| pm.measure_tree_revoke(children, kernels))
}

fn main() {
    banner("Ablation: revoke message batching", "§5.2 (proposed optimisation)");
    let mut machines = Machines { pool: MachinePool::new(), batched: None };
    println!(
        "{:<10} {:<9} {:>16} {:>16} {:>9}",
        "children", "kernels", "unbatched (µs)", "batched (µs)", "speedup"
    );
    for children in [16u32, 32, 64, 96, 128] {
        for kernels in [4u16, 12] {
            let plain = tree_revoke(&mut machines, children, kernels, false);
            let batched = tree_revoke(&mut machines, children, kernels, true);
            println!(
                "{:<10} {:<9} {:>16.2} {:>16.2} {:>8.2}x",
                children,
                format!("1+{kernels}"),
                Cycles(plain).as_micros(),
                Cycles(batched).as_micros(),
                plain as f64 / batched as f64
            );
        }
    }
    println!();
    println!("batching collapses the per-child inter-kernel messages into one");
    println!("request per kernel, moving the parallel-revocation break-even to");
    println!("smaller trees — confirming the paper's expectation.");
}
