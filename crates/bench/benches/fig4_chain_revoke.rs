//! Figure 4: revoking capability chains of varying sizes.
//!
//! A chain emerges when a capability is exchanged with an application
//! which exchanges it again with another, and so on. The local chain
//! ping-pongs between two VPEs of one group; the group-spanning chain is
//! the adversarial cross-kernel case of §5.2 (circular dependency
//! between the two kernels during revocation — handled without deadlock
//! by the two-phase algorithm). The M3 line is the single-kernel
//! baseline.

use semper_base::KernelMode;
use semper_bench::banner;
use semperos::pool::MachinePool;

fn main() {
    banner("Figure 4: revoking capability chains of varying sizes", "Figure 4");
    // One pooled machine per shape, reused across all chain lengths —
    // measurement cycles are identical on a quiesced reused machine.
    let mut pool = MachinePool::new();
    println!(
        "{:<8} {:>16} {:>20} {:>14}",
        "Length", "Local (cycles)", "Spanning (cycles)", "M3 (cycles)"
    );
    for len in [1u32, 10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
        let local = pool.with(2, 2, KernelMode::SemperOS, |m| m.measure_chain_revoke(len, false));
        let spanning = pool.with(2, 2, KernelMode::SemperOS, |m| m.measure_chain_revoke(len, true));
        let m3 = pool.with(1, 2, KernelMode::M3, |m| m.measure_chain_revoke(len, false));
        println!("{len:<8} {local:>16} {spanning:>20} {m3:>14}");
    }
    println!();
    let l100 = pool.with(2, 2, KernelMode::SemperOS, |m| m.measure_chain_revoke(100, false));
    let s100 = pool.with(2, 2, KernelMode::SemperOS, |m| m.measure_chain_revoke(100, true));
    let m100 = pool.with(1, 2, KernelMode::M3, |m| m.measure_chain_revoke(100, false));
    println!(
        "At length 100: spanning/local = {:.2}x (paper ~3x), local/M3 = {:.2}x (paper ~2x)",
        s100 as f64 / l100 as f64,
        l100 as f64 / m100 as f64
    );
}
