//! Table 2: types of interference with overlapping capability-modifying
//! operations.
//!
//! This harness *constructs* each interference case of Table 2 with the
//! untimed protocol cluster and reports the observed outcome, confirming
//! that the protocol produces exactly the paper's matrix:
//!
//! | 1st \ 2nd | Obtain     | Delegate   | Revoke/Crash |
//! |-----------|------------|------------|--------------|
//! | Obtain    | serialized | serialized | orphaned     |
//! | Delegate  | serialized | serialized | invalid*     |
//! | Revoke    | pointless  | pointless  | incomplete*  |
//!
//! (* = prevented by the protocol: the two-way delegate handshake and
//! the two-phase revocation.)

use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{CapSel, Code, VpeId};
use semper_bench::banner;
use semper_kernel::harness::TestCluster;

fn create_mem(c: &mut TestCluster, vpe: VpeId) -> CapSel {
    match c.syscall(vpe, Syscall::CreateMem { size: 4096, perms: Perms::RW }).result {
        Ok(SysReplyData::Mem { sel, .. }) => sel,
        other => panic!("create_mem: {other:?}"),
    }
}

fn obtain_call(other: VpeId, sel: CapSel) -> Syscall {
    Syscall::Exchange {
        other,
        own_sel: CapSel::INVALID,
        other_sel: sel,
        kind: ExchangeKind::Obtain,
    }
}

fn main() {
    banner("Table 2: interference between overlapping CMOs", "Table 2");

    // --- Obtain then Obtain: serialized at the owner's kernel. ---
    {
        let mut c = TestCluster::new(3, 1);
        let sel = create_mem(&mut c, VpeId(0));
        let t1 = c.syscall_async(VpeId(1), obtain_call(VpeId(0), sel));
        let t2 = c.syscall_async(VpeId(2), obtain_call(VpeId(0), sel));
        c.pump_all();
        let ok1 = c.take_reply(VpeId(1), t1).unwrap().result.is_ok();
        let ok2 = c.take_reply(VpeId(2), t2).unwrap().result.is_ok();
        c.check_invariants();
        println!("obtain || obtain    -> serialized (both succeed: {})", ok1 && ok2);
    }

    // --- Obtain then requester crash: orphaned, then cleaned. ---
    {
        let mut c = TestCluster::new(2, 1);
        let sel = create_mem(&mut c, VpeId(0));
        c.syscall_async(VpeId(1), obtain_call(VpeId(0), sel));
        c.pump_n(4); // child linked at owner, reply in flight
        c.kill(VpeId(1));
        c.pump_all();
        let orphans = c.kernels[0].stats().orphans_cleaned;
        c.check_invariants();
        println!("obtain || crash     -> orphaned (cleaned: {})", orphans == 1);
    }

    // --- Delegate racing a revoke of the parent: invalid PREVENTED. ---
    {
        let mut c = TestCluster::new(2, 1);
        let sel = create_mem(&mut c, VpeId(0));
        c.syscall_async(
            VpeId(0),
            Syscall::Exchange {
                other: VpeId(1),
                own_sel: sel,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            },
        );
        c.pump_n(4); // receiver-side capability created, not inserted
        let rt = c.syscall_front(VpeId(0), Syscall::Revoke { sel, own: true });
        c.pump_all();
        let revoked = c.take_reply(VpeId(0), rt).unwrap().result.is_ok();
        let leaked = c.kernels[1]
            .mapdb()
            .iter()
            .any(|cap| matches!(cap.kind, semper_base::msg::CapKindDesc::Memory { .. }));
        c.check_invariants();
        println!(
            "delegate || revoke  -> invalid PREVENTED by two-way handshake \
             (revoke acked: {revoked}, no leaked capability: {})",
            !leaked
        );
    }

    // --- Exchange against a capability under revocation: pointless. ---
    {
        let mut c = TestCluster::new(2, 2);
        let sel = create_mem(&mut c, VpeId(0));
        // Span the tree so the revoke stays in flight.
        let dt = c.syscall_async(
            VpeId(0),
            Syscall::Exchange {
                other: VpeId(2),
                own_sel: sel,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            },
        );
        c.pump_all();
        assert!(c.take_reply(VpeId(0), dt).unwrap().result.is_ok());
        let rt = c.syscall_async(VpeId(0), Syscall::Revoke { sel, own: true });
        c.pump_n(1); // marked locally, remote child still pending
        let ot = c.syscall_async(VpeId(1), obtain_call(VpeId(0), sel));
        c.pump_all();
        let denied = c.take_reply(VpeId(1), ot).unwrap().result.unwrap_err().code()
            == Code::RevokeInProgress;
        let done = c.take_reply(VpeId(0), rt).unwrap().result.is_ok();
        c.check_invariants();
        println!(
            "revoke || obtain    -> pointless exchange denied immediately: {}",
            denied && done
        );
    }

    // --- Overlapping revokes: incomplete acks PREVENTED. ---
    {
        let mut c = TestCluster::new(3, 1);
        let a = create_mem(&mut c, VpeId(0));
        let db = c.syscall(
            VpeId(0),
            Syscall::Exchange {
                other: VpeId(1),
                own_sel: a,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            },
        );
        let Ok(SysReplyData::Delegated { recv_sel: b }) = db.result else { panic!() };
        let dc = c.syscall(
            VpeId(1),
            Syscall::Exchange {
                other: VpeId(2),
                own_sel: b,
                other_sel: CapSel::INVALID,
                kind: ExchangeKind::Delegate,
            },
        );
        assert!(dc.result.is_ok());
        let t_outer = c.syscall_async(VpeId(0), Syscall::Revoke { sel: a, own: true });
        let t_inner = c.syscall_async(VpeId(1), Syscall::Revoke { sel: b, own: true });
        c.pump_all();
        let outer = c.take_reply(VpeId(0), t_outer).unwrap().result.is_ok();
        let inner = c.take_reply(VpeId(1), t_inner).unwrap().result.is_ok();
        let remaining = c.total_caps();
        c.check_invariants();
        println!(
            "revoke || revoke    -> incomplete PREVENTED: both acked after full \
             deletion ({}, {} capabilities left = self-caps only: {})",
            outer && inner,
            remaining,
            remaining == 3
        );
    }
    println!();
    println!("matrix reproduced: serialized / orphaned-cleaned / invalid-prevented /");
    println!("pointless-denied / incomplete-prevented.");
}
