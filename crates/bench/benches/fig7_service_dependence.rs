//! Figure 7: service dependence — parallel efficiency of tar and SQLite
//! with a fixed number of kernels (64) and 4..64 m3fs instances.
//!
//! Paper observations: tar gains nothing beyond 16-32 services; SQLite
//! is more service-dependent (16 → 32 services: +9 percentage points).

use semper_apps::AppKind;
use semper_base::MachineConfig;
use semper_bench::{banner, efficiency, pct};

fn main() {
    banner("Figure 7: service dependence (64 kernels)", "Figure 7");
    let services = [4u16, 8, 16, 32, 48, 64];
    let counts = [128u32, 256, 384, 512];
    for app in [AppKind::Tar, AppKind::Sqlite] {
        println!("--- {} ---", app.name());
        print!("{:<22}", "config");
        for n in counts {
            print!(" {n:>7}");
        }
        println!();
        for svc in services {
            let cfg = MachineConfig::paper_testbed(64, svc);
            print!("{:<22}", format!("64 kernels {svc} services"));
            for n in counts {
                print!(" {:>7}", pct(efficiency(&cfg, app, n)));
            }
            println!();
        }
    }
    println!();
    println!("shape check: efficiency rises monotonically with service count;");
    println!("SQLite depends on services more strongly than tar. Our service");
    println!("model is coarser than m3fs, so the low-service points dip deeper");
    println!("than the paper's (see EXPERIMENTS.md).");
}
