//! scale_capops: capability bookkeeping on the kernel hot paths, at
//! 10–100× the paper's evaluation scale.
//!
//! The paper's revocation experiments (Figures 4 and 5) stop at chains
//! and trees of ~100 capabilities. This harness pushes the same shapes
//! to thousands of capabilities — where per-capability bookkeeping cost
//! inside one kernel dominates — and records host wall-clock, simulated
//! cycles, events/second, and capabilities deleted/second:
//!
//! * **deep chain** — a delegation chain ping-ponging between two VPEs of
//!   one group, then one revoke of the root (Figure 4 at 40×);
//! * **spanning chain** — the adversarial cross-kernel chain of §5.2;
//! * **wide tree** — one capability delegated to thousands of holders,
//!   then one revoke of the root (Figure 5 at 100×);
//! * **dense table** — an nginx-like VPE holding a dense capability
//!   table, torn down one revoke at a time (the per-close revoke pattern
//!   of §5.3.3);
//! * **group migration** — a VPE owning thousands of capabilities (with
//!   cross-kernel children) has its whole DDL group migrated around a
//!   three-kernel ring (`kernel::ops::migrate`, new in PR 3). For this
//!   scenario the `revoke_ms`/`revoke_sim_cycles` fields record the
//!   migration sweep (field names kept stable for baseline comparison);
//! * **spanning revoke, sequential vs batched** (new in PR 4) — a VPE
//!   owns thousands of capabilities, each with one remote child;
//!   teardown issues one `Revoke` syscall per capability, or the same
//!   revokes as a single `Syscall::Batch` whose coalesced fan-out sends
//!   one grouped request per peer kernel (`kernel::ops::bulk`). The
//!   `kcalls_out` field quantifies the cross-kernel message reduction;
//! * **file workload, sequential vs batched** (new in PR 4) — N tar
//!   instances against m3fs; in the batched variant the service revokes
//!   each closed file's delegated extents as one batch
//!   (`Feature::SyscallBatching`). `revoke_sim_cycles` holds the run's
//!   makespan;
//! * **dense table teardown, sequential vs parallel** (new in PR 6) — a
//!   VPE owns thousands of capabilities, each delegated once so the
//!   children spread over three peer kernels; teardown revokes all of
//!   them one blocking syscall at a time, or as one `Syscall::Batch`
//!   with `Feature::ParallelSweep` enabled so the coalesced revoke
//!   partitions the subtree by owning kernel and drives the two-phase
//!   mark → delete sweep (`kernel::ops::sweep`). The appended
//!   `sweep_*` fields record fan-out, round depth, and partition
//!   count; `handler_dispatches` counts host-side kernel handler
//!   entries (the batched-dispatch win);
//! * **rebalance under load** (new in PR 7) — the webserver workload
//!   keeps running while every server's capability group migrates
//!   around a three-kernel ring *without quiescing*: the old owner
//!   holds or forwards every call that races the handover
//!   (`kernel::ops::migrate`, `Phase::Draining`), and the closed-loop
//!   request stream must never stall;
//! * **faulted spanning teardown** (new in PR 9) — the spanning-revoke
//!   shape torn down under a seed-scripted fault plan
//!   (`semper_sim::faults`): message drops, duplicates, delays and a
//!   one-way partition window, with the ops engine's deadline → retry
//!   → abort machinery guaranteeing termination. The appended
//!   `faults_*` fields record injected faults, retries, aborted ops
//!   and healed partitions — all deterministic under the cycle gate;
//! * **service chains, blocking vs pipelined** (new in PR 10) — every
//!   group-0 client of a two-kernel machine runs the canonical
//!   dependent chain (create → derive → cross-kernel delegate →
//!   read-back derive), either as four synchronous syscalls or
//!   submitted up front through `Syscall::SubmitAsync` with
//!   dependencies named by their *promise* selector
//!   (`Feature::PromiseIpc`, `kernel::ops::promise`) and only the
//!   tail redeemed.
//!   `revoke_sim_cycles` holds the workload's end-to-end makespan —
//!   the pipelined twin must finish in strictly fewer simulated
//!   cycles — and the appended `promises_*`/`calls_pipelined` columns
//!   record the protocol counters;
//! * a **data-structure A/B**: the owner-table reverse removal
//!   (`CapTable::remove_key`) against a re-implementation of the naive
//!   linear-scan sweep the seed shipped, on identical 10k-entry tables.
//!
//! The scenarios are independent machines, so the harness runs them on
//! `BENCH_THREADS` worker threads (`semperos::Runner`; default 1 =
//! serial). Parallelism is strictly between machines — every
//! per-scenario `revoke_sim_cycles`, kcall count, and JSON row is
//! byte-identical to the serial run (results merge in submission
//! order); only the harness wall-clock drops. The report records
//! `threads` and `wall_ms_total`; with `BENCH_SERIAL_REF=<report>` the
//! serial run's wall-clock is embedded and the parallel speedup
//! computed, and `BENCH_ASSERT_SPEEDUP=<min>` turns that into a hard
//! gate (for multi-core hosts; see EXPERIMENTS.md).
//!
//! Results land in `BENCH_PR10.json` at the workspace root (override with
//! `BENCH_OUT`). If `BENCH_BASELINE` names an earlier report, its
//! scenario timings are embedded under `"baseline"` and per-scenario
//! speedups are computed — this is how each PR's report compares
//! against the previous one. Simulated cycles are part of the
//! comparison: scenarios whose name *and* size match the baseline must
//! reproduce its `revoke_sim_cycles` bit-identically, and with
//! `BENCH_ENFORCE_CYCLES=1` (the CI bench-regression gate) any drift
//! fails the run. `SCALE_CAPOPS_SMOKE=1` shrinks every scenario for CI;
//! `BENCH_SMOKE_BASELINE.json` holds the smoke-scale reference cycles.

use std::time::Instant;

use semper_apps::AppKind;
use semper_base::msg::{ExchangeKind, Perms, SysReplyData, Syscall};
use semper_base::{
    CapSel, CapType, DdlKey, Feature, KernelId, KernelMode, MachineConfig, PeId, VpeId,
};
use semper_bench::report::{read_report, render, Val};
use semper_caps::CapTable;
use semper_sim::{FaultPlan, PartitionWindow};
use semperos::experiment::{run_app_instances, MicroMachine};
use semperos::machine::{Machine, Workload};
use semperos::{Job, Runner};

/// One scenario measurement.
struct Scenario {
    name: &'static str,
    size: u32,
    build_ms: f64,
    revoke_ms: f64,
    revoke_cycles: u64,
    events: u64,
    caps_deleted: u64,
    /// Cross-kernel requests sent during the measured phase (the
    /// batched scenarios exist to shrink this).
    kcalls: u64,
    /// Sweep observability of the measured phase (PR 6): all zero for
    /// scenarios that never trigger the parallel sweep.
    sweep: SweepObs,
    /// Fault-engine observability (PR 9): all zero for scenarios that
    /// run without a fault plan.
    faults: FaultObs,
    /// Promise-protocol observability (PR 10): all zero for scenarios
    /// that never submit an asynchronous invocation.
    promise: PromiseObs,
}

/// Parallel-sweep observability counters (PR 6): fan-out width, round
/// depth, partitions used, and host-side handler dispatches of the
/// measured phase.
#[derive(Default)]
struct SweepObs {
    fanout: u64,
    depth: u64,
    partitions: u64,
    dispatches: u64,
}

/// Fault-engine observability counters (PR 9): network faults injected
/// by the plan, deadline-driven request-leg retries, operations aborted
/// with an `Err`, and partition windows that healed during the run.
#[derive(Default)]
struct FaultObs {
    injected: u64,
    retries: u64,
    ops_aborted: u64,
    partitions_healed: u64,
}

/// Promise-protocol observability counters (PR 10): promise
/// capabilities minted by `SubmitAsync`, promises driven to a terminal
/// resolution, and calls that actually pipelined — parked against an
/// unresolved promise or gated behind an in-flight predecessor instead
/// of blocking the client.
#[derive(Default)]
struct PromiseObs {
    created: u64,
    resolved: u64,
    pipelined: u64,
}

impl Scenario {
    fn caps_per_sec(&self) -> f64 {
        if self.revoke_ms <= 0.0 {
            return 0.0;
        }
        self.caps_deleted as f64 / (self.revoke_ms / 1e3)
    }

    fn to_val(&self) -> Val {
        Val::obj(vec![
            ("name", Val::S(self.name.into())),
            ("size", Val::U(self.size as u64)),
            ("build_ms", Val::F(self.build_ms)),
            ("revoke_ms", Val::F(self.revoke_ms)),
            ("revoke_sim_cycles", Val::U(self.revoke_cycles)),
            ("events", Val::U(self.events)),
            ("caps_deleted", Val::U(self.caps_deleted)),
            ("caps_deleted_per_sec", Val::F(self.caps_per_sec())),
            // New fields append after the ones the baseline parser
            // scans, so older reports stay comparable.
            ("kcalls_out", Val::U(self.kcalls)),
            ("sweep_fanout", Val::U(self.sweep.fanout)),
            ("sweep_depth", Val::U(self.sweep.depth)),
            ("sweep_partitions", Val::U(self.sweep.partitions)),
            ("handler_dispatches", Val::U(self.sweep.dispatches)),
            ("faults_injected", Val::U(self.faults.injected)),
            ("fault_retries", Val::U(self.faults.retries)),
            ("ops_aborted", Val::U(self.faults.ops_aborted)),
            ("partitions_healed", Val::U(self.faults.partitions_healed)),
            ("promises_created", Val::U(self.promise.created)),
            ("promises_resolved", Val::U(self.promise.resolved)),
            ("calls_pipelined", Val::U(self.promise.pipelined)),
        ])
    }
}

fn ms(t: Instant) -> f64 {
    t.elapsed().as_secs_f64() * 1e3
}

fn total_caps_deleted(m: &Machine) -> u64 {
    m.kernel_stats().iter().map(|s| s.caps_deleted).sum()
}

fn total_kcalls(m: &Machine) -> u64 {
    m.kernel_stats().iter().map(|s| s.kcalls_out).sum()
}

fn total_dispatches(m: &Machine) -> u64 {
    m.kernel_stats().iter().map(|s| s.handler_dispatches).sum()
}

/// Snapshots the sweep counters after the measured phase.
/// `dispatches_before` is the dispatch total at the start of the phase
/// (the cumulative counters cover machine construction too).
fn sweep_obs(m: &Machine, dispatches_before: u64) -> SweepObs {
    let st = m.kernel_stats();
    SweepObs {
        fanout: st.iter().map(|s| s.sweep_fanout).sum(),
        depth: st.iter().map(|s| s.sweep_depth).max().unwrap_or(0),
        partitions: st.iter().map(|s| s.sweep_partitions).sum(),
        dispatches: total_dispatches(m) - dispatches_before,
    }
}

/// Deep local chain: delegate root down `len` times, revoke once.
fn chain_revoke(len: u32, spanning: bool) -> Scenario {
    let mut m = MicroMachine::new(2, 2, KernelMode::SemperOS);
    let a = m.vpe(0, 0);
    let b = if spanning { m.vpe(1, 0) } else { m.vpe(0, 1) };

    let t = Instant::now();
    let root = m.create_mem(a);
    let mut holder = a;
    let mut sel = root;
    for _ in 0..len {
        let next = if holder == a { b } else { a };
        let (nsel, _) = m.delegate(holder, next, sel);
        holder = next;
        sel = nsel;
    }
    let build_ms = ms(t);

    let kcalls_before = total_kcalls(m.machine());
    let dispatches_before = total_dispatches(m.machine());
    let t = Instant::now();
    let revoke_cycles = m.revoke(a, root);
    let revoke_ms = ms(t);
    Scenario {
        name: if spanning { "chain_revoke_spanning" } else { "chain_revoke_local" },
        size: len + 1,
        build_ms,
        revoke_ms,
        revoke_cycles,
        events: m.machine().events(),
        caps_deleted: total_caps_deleted(m.machine()),
        kcalls: total_kcalls(m.machine()) - kcalls_before,
        sweep: sweep_obs(m.machine(), dispatches_before),
        faults: FaultObs::default(),
        promise: PromiseObs::default(),
    }
}

/// Wide tree: delegate the root to `children` copies held by one VPE
/// whose table already holds `prefill` unrelated long-lived capabilities
/// (the dense-table shape of a service or nginx worker, §5.3.3). The
/// prefill is what exposes linear owner-table sweeps: every deletion of a
/// subtree capability has to get past the unrelated entries.
fn tree_revoke(children: u32, prefill: u32) -> Scenario {
    let mut m = MicroMachine::new(2, 2, KernelMode::SemperOS);
    let a = m.vpe(0, 0);
    let b = m.vpe(0, 1);

    let t = Instant::now();
    for _ in 0..prefill {
        let _ = m.create_mem(b);
    }
    let root = m.create_mem(a);
    for _ in 0..children {
        let _ = m.delegate(a, b, root);
    }
    let build_ms = ms(t);

    let kcalls_before = total_kcalls(m.machine());
    let dispatches_before = total_dispatches(m.machine());
    let t = Instant::now();
    let revoke_cycles = m.revoke(a, root);
    let revoke_ms = ms(t);
    Scenario {
        name: "tree_revoke_wide",
        size: children + 1,
        build_ms,
        revoke_ms,
        revoke_cycles,
        events: m.machine().events(),
        caps_deleted: total_caps_deleted(m.machine()),
        kcalls: total_kcalls(m.machine()) - kcalls_before,
        sweep: sweep_obs(m.machine(), dispatches_before),
        faults: FaultObs::default(),
        promise: PromiseObs::default(),
    }
}

/// Dense table: one VPE holds `caps` capabilities, torn down one revoke
/// at a time in reverse allocation order (LIFO, the nested open/close
/// pattern) — every revoke sweeps against the still-dense owner table.
fn dense_table_teardown(caps: u32) -> Scenario {
    let mut m = MicroMachine::new(1, 2, KernelMode::SemperOS);
    let a = m.vpe(0, 0);

    let t = Instant::now();
    let sels: Vec<CapSel> = (0..caps).map(|_| m.create_mem(a)).collect();
    let build_ms = ms(t);

    let kcalls_before = total_kcalls(m.machine());
    let dispatches_before = total_dispatches(m.machine());
    let t = Instant::now();
    let mut revoke_cycles = 0;
    for sel in sels.into_iter().rev() {
        revoke_cycles += m.revoke(a, sel);
    }
    let revoke_ms = ms(t);
    Scenario {
        name: "dense_table_teardown",
        size: caps,
        build_ms,
        revoke_ms,
        revoke_cycles,
        events: m.machine().events(),
        caps_deleted: total_caps_deleted(m.machine()),
        kcalls: total_kcalls(m.machine()) - kcalls_before,
        sweep: sweep_obs(m.machine(), dispatches_before),
        faults: FaultObs::default(),
        promise: PromiseObs::default(),
    }
}

/// Dense spanning teardown, sequential vs parallel (the PR 6 sweep
/// twins): VPE a of group 0 owns `caps` capabilities, each delegated
/// once round-robin to the VPEs of groups 1–3, so the revocation
/// subtree spans three peer kernels. Teardown revokes all of them:
/// one blocking `Revoke` syscall at a time (reverse allocation order,
/// like `dense_table_teardown`), or as one `Syscall::Batch` with
/// `Feature::ParallelSweep` enabled — the coalesced revoke partitions
/// the subtree by owning kernel and drives the two-phase mark → delete
/// sweep, so the three peers sweep their partitions concurrently in
/// sim time and the host touches each partition as one grouped
/// handler dispatch instead of one per capability.
fn dense_table_spanning(caps: u32, parallel: bool) -> Scenario {
    let mut m = MicroMachine::new(4, 2, KernelMode::SemperOS);
    if parallel {
        m.machine().enable_feature_everywhere(Feature::ParallelSweep);
    }
    let a = m.vpe(0, 0);

    let t = Instant::now();
    let sels: Vec<CapSel> = (0..caps).map(|_| m.create_mem(a)).collect();
    for (i, sel) in sels.iter().enumerate() {
        let to = m.vpe(1 + (i as u16 % 3), 0);
        let _ = m.delegate(a, to, *sel);
    }
    let build_ms = ms(t);

    let kcalls_before = total_kcalls(m.machine());
    let dispatches_before = total_dispatches(m.machine());
    let t = Instant::now();
    let revoke_cycles = if parallel {
        let items: Box<[Syscall]> =
            sels.iter().map(|sel| Syscall::Revoke { sel: *sel, own: true }).collect();
        let (r, cycles) = m.machine().syscall_blocking(a, Syscall::Batch(items));
        match r.result {
            Ok(SysReplyData::Batch(results)) => {
                assert_eq!(results.len(), caps as usize);
                assert!(results.iter().all(|i| i.is_ok()), "parallel teardown item failed");
            }
            other => panic!("parallel teardown failed: {other:?}"),
        }
        cycles
    } else {
        sels.into_iter().rev().map(|sel| m.revoke(a, sel)).sum()
    };
    let revoke_ms = ms(t);
    m.machine().check_invariants();
    Scenario {
        name: if parallel {
            "dense_table_teardown_parallel"
        } else {
            "dense_table_teardown_sequential"
        },
        size: caps,
        build_ms,
        revoke_ms,
        revoke_cycles,
        events: m.machine().events(),
        caps_deleted: total_caps_deleted(m.machine()),
        kcalls: total_kcalls(m.machine()) - kcalls_before,
        sweep: sweep_obs(m.machine(), dispatches_before),
        faults: FaultObs::default(),
        promise: PromiseObs::default(),
    }
}

/// Group migration around a three-kernel ring: one VPE owns `caps`
/// capabilities, every sixteenth delegated to another group so the
/// moving group carries live cross-kernel child links; the whole group
/// then migrates kernel 0 → 1 → 2 → 0. Measures the marshal/install/
/// handover sweep per hop (`revoke_ms`/`revoke_sim_cycles` hold the
/// migration totals; see the module docs).
fn group_migration(caps: u32) -> Scenario {
    let mut m = MicroMachine::new(3, 2, KernelMode::SemperOS);
    let a = m.vpe(0, 0);

    let t = Instant::now();
    let sels: Vec<CapSel> = (0..caps).map(|_| m.create_mem(a)).collect();
    for (i, sel) in sels.iter().enumerate().step_by(16) {
        let to = m.vpe(1 + (i as u16 / 16) % 2, 0);
        let _ = m.delegate(a, to, *sel);
    }
    let build_ms = ms(t);

    let kcalls_before = total_kcalls(m.machine());
    let dispatches_before = total_dispatches(m.machine());
    let t = Instant::now();
    let mut migrate_cycles = 0;
    for dst in [KernelId(1), KernelId(2), KernelId(0)] {
        migrate_cycles += m.machine().migrate_vpe(a, dst).expect("quiescent migration");
    }
    let migrate_ms = ms(t);
    m.machine().check_invariants();
    Scenario {
        name: "group_migration_ring",
        size: caps,
        build_ms,
        revoke_ms: migrate_ms,
        revoke_cycles: migrate_cycles,
        events: m.machine().events(),
        caps_deleted: total_caps_deleted(m.machine()),
        kcalls: total_kcalls(m.machine()) - kcalls_before,
        sweep: sweep_obs(m.machine(), dispatches_before),
        faults: FaultObs::default(),
        promise: PromiseObs::default(),
    }
}

/// Live rebalancing under load (new in PR 7): a three-kernel machine
/// runs the webserver workload — nginx servers replaying their
/// m3fs-backed handling trace against closed-loop load generators —
/// while every server's capability group migrates to the next kernel
/// of the ring, `hops` full rotations, *without quiescing*. Each
/// handover opens the forward-or-hold window (`kernel::ops::migrate`,
/// `Phase::Draining`): the m3fs service's extent delegations and
/// close-revokes into the moving group keep landing at the old owner
/// mid-window and ride the hold queue; bystander kernels' stale-routed
/// requests get relayed to the new owner. The
/// scenario asserts that the closed loop never stalls (requests keep
/// completing after every hop), that every migration completes, and
/// that the handover window was actually exercised (holds or forwards
/// observed). `revoke_ms`/`revoke_sim_cycles` record the rebalancing
/// phase (field names kept stable for the baseline parser); `size` is
/// the server count.
fn rebalance_under_load(servers: u16, hops: u32) -> Scenario {
    let mut cfg = MachineConfig::small();
    cfg.num_pes = 96;
    cfg.kernels = 3;
    cfg.services = 3;
    cfg.mesh_width = semper_base::config::mesh_width_for(cfg.num_pes);
    let t = Instant::now();
    let mut m =
        Machine::build(cfg, u32::from(servers), (servers / 4).max(1), Workload::Nginx { depth: 4 });
    m.boot_os();
    m.start_nginx();
    let warmup = m.now() + 400_000;
    m.run_until(warmup);
    assert!(m.loadgen_completed() > 0, "no request completed during warmup");
    let build_ms = ms(t);

    let kcalls_before = total_kcalls(&m);
    let dispatches_before = total_dispatches(&m);
    let server_vpes = m.topo().server_vpes.clone();
    let t = Instant::now();
    let mut handover_cycles = 0u64;
    // Every wait below threads an absolute horizon through
    // `Machine::advance_until`, which moves the base forward by the
    // full window even when no event lands inside it — recomputing
    // `run_until(now() + window)` instead livelocks as soon as the next
    // event (e.g. a server coming out of a ~150k-cycle modeled extent
    // access) lies beyond the window. See `Machine::advance_until`.
    let mut horizon = m.now();
    for hop in 0..hops {
        let before = m.loadgen_completed();
        for &vpe in &server_vpes {
            let pe = m.topo().vpe_dir[vpe.idx()];
            let dst = KernelId((m.topo().kernel_of(pe).0 + 1) % 3);
            // Open the handover the moment the server has an extent
            // request outstanding: the service's answer is a DeriveMem
            // plus a delegation into the moving group within a couple
            // thousand cycles — inside the window — so every hop
            // provably races capability traffic. (Servers spend most
            // cycles in modeled compute; an arbitrary start instant
            // finds nothing outstanding.)
            let mut patience = 0u32;
            while !m.vpe_awaiting_extent(vpe) {
                horizon = m.advance_until(horizon + 500);
                patience += 1;
                assert!(patience < 8192, "{vpe} never requested an extent; server wedged?");
            }
            let ticket = m.start_vpe_migration(vpe, dst).expect("start live migration");
            // Let the closed loop race the open window before draining
            // it: service traffic into the moving group arriving now is
            // held or forwarded by the old owner instead of erroring.
            horizon = m.advance_until(horizon + 15_000);
            handover_cycles += m.finish_vpe_migration(ticket).expect("live migration");
            // A slice of steady-state traffic against the rebalanced
            // placement before the next group moves.
            horizon = m.advance_until(horizon + 25_000);
        }
        // The closed loop must keep completing requests across the
        // rotation; per-request latency is large (hundreds of
        // thousands of cycles of modeled trace replay), so give the
        // check a bounded catch-up window instead of demanding
        // progress inside the migration slices themselves.
        let mut patience = 0u32;
        while m.loadgen_completed() <= before {
            horizon = m.advance_until(horizon + 50_000);
            patience += 1;
            assert!(patience < 256, "closed loop stalled during rotation {hop}");
        }
    }
    let rebalance_ms = ms(t);
    m.check_invariants();

    let st = m.kernel_stats();
    let moved: u64 = st.iter().map(|s| s.migrations_out).sum();
    assert_eq!(moved, u64::from(hops) * server_vpes.len() as u64, "every hop must complete");
    let held: u64 = st.iter().map(|s| s.ops_held).sum();
    let forwarded: u64 = st.iter().map(|s| s.syscalls_forwarded + s.kcalls_forwarded).sum();
    assert!(
        held + forwarded > 0,
        "no handover window was exercised: the migrations all found quiescent groups"
    );

    Scenario {
        name: "rebalance_under_load",
        size: u32::from(servers),
        build_ms,
        revoke_ms: rebalance_ms,
        revoke_cycles: handover_cycles,
        events: m.events(),
        caps_deleted: total_caps_deleted(&m),
        kcalls: total_kcalls(&m) - kcalls_before,
        sweep: sweep_obs(&m, dispatches_before),
        faults: FaultObs::default(),
        promise: PromiseObs::default(),
    }
}

/// Spanning revoke, sequential vs batched (the PR 4 bulk-API twins):
/// VPE a of group 0 owns `n` capabilities, each delegated once to the
/// VPE of group 1 — so every revoke has exactly one remote child.
/// Teardown revokes all `n`: as `n` separate `Revoke` syscalls, or as
/// one `Syscall::Batch` whose coalesced fan-out sends a single grouped
/// revoke request to the peer kernel (`kernel::ops::bulk`). Same final
/// state; `kcalls_out` counts the cross-kernel requests of the
/// teardown phase.
fn spanning_revoke(n: u32, batched: bool) -> Scenario {
    let mut m = MicroMachine::new(2, 2, KernelMode::SemperOS);
    let a = m.vpe(0, 0);
    let b = m.vpe(1, 0);

    let t = Instant::now();
    let sels: Vec<CapSel> = (0..n).map(|_| m.create_mem(a)).collect();
    for sel in &sels {
        let _ = m.delegate(a, b, *sel);
    }
    let build_ms = ms(t);

    let kcalls_before = total_kcalls(m.machine());
    let dispatches_before = total_dispatches(m.machine());
    let t = Instant::now();
    let revoke_cycles = if batched {
        let items: Box<[Syscall]> =
            sels.iter().map(|sel| Syscall::Revoke { sel: *sel, own: true }).collect();
        let (r, cycles) = m.machine().syscall_blocking(a, Syscall::Batch(items));
        match r.result {
            Ok(SysReplyData::Batch(results)) => {
                assert_eq!(results.len(), n as usize);
                assert!(results.iter().all(|i| i.is_ok()), "batched revoke item failed");
            }
            other => panic!("batched revoke failed: {other:?}"),
        }
        cycles
    } else {
        sels.into_iter().map(|sel| m.revoke(a, sel)).sum()
    };
    let revoke_ms = ms(t);
    m.machine().check_invariants();
    Scenario {
        name: if batched { "spanning_revoke_batched" } else { "spanning_revoke_sequential" },
        size: n,
        build_ms,
        revoke_ms,
        revoke_cycles,
        events: m.machine().events(),
        caps_deleted: total_caps_deleted(m.machine()),
        kcalls: total_kcalls(m.machine()) - kcalls_before,
        sweep: sweep_obs(m.machine(), dispatches_before),
        faults: FaultObs::default(),
        promise: PromiseObs::default(),
    }
}

/// File workload, sequential vs batched (the PR 4 service-side twins):
/// `instances` tar replays against m3fs on a 4-kernel/2-service
/// machine — fewer services than kernels, so half the clients open
/// *cross-group* sessions and their extent capabilities span kernels.
/// The batched variant enables `Feature::SyscallBatching`, so each
/// file close revokes its delegated extents through one
/// `Syscall::Batch` instead of one revoke syscall per extent (and the
/// coalesced fan-out groups the cross-kernel revokes per peer).
/// `revoke_sim_cycles` holds the run's makespan; `kcalls_out` the
/// cross-kernel requests of the whole run.
fn file_workload(instances: u32, batched: bool) -> Scenario {
    let mut cfg = MachineConfig::small();
    cfg.num_pes = 24;
    cfg.kernels = 4;
    cfg.services = 2;
    cfg.mesh_width = semper_base::config::mesh_width_for(cfg.num_pes);
    if batched {
        cfg = cfg.with_feature(Feature::SyscallBatching);
    }
    let t = Instant::now();
    let res = run_app_instances(&cfg, AppKind::Tar, instances);
    let total_ms = ms(t);
    Scenario {
        name: if batched { "file_workload_batched" } else { "file_workload_sequential" },
        size: instances,
        build_ms: 0.0,
        revoke_ms: total_ms,
        revoke_cycles: res.makespan,
        events: res.events,
        caps_deleted: res.kernel_stats.iter().map(|s| s.caps_deleted).sum(),
        kcalls: res.kernel_stats.iter().map(|s| s.kcalls_out).sum(),
        sweep: SweepObs {
            fanout: res.kernel_stats.iter().map(|s| s.sweep_fanout).sum(),
            depth: res.kernel_stats.iter().map(|s| s.sweep_depth).max().unwrap_or(0),
            partitions: res.kernel_stats.iter().map(|s| s.sweep_partitions).sum(),
            dispatches: res.kernel_stats.iter().map(|s| s.handler_dispatches).sum(),
        },
        faults: FaultObs::default(),
        promise: PromiseObs::default(),
    }
}

/// Spanning teardown under a scripted fault plan (new in PR 9): the
/// spanning-revoke shape — VPE a of group 0 owns `caps` capabilities,
/// each with one remote child on kernel 1 — torn down while the
/// seed-scripted fault engine (`semper_sim::faults`) drops, duplicates
/// and delays cross-kernel messages and holds a one-way kernel 0 → 1
/// partition open for a window mid-teardown. Every revoke still
/// returns to the caller (retried legs or a deadline-driven abort of
/// the remote leg — never a hang), the machine drains to a quiescent
/// state, and the whole run is deterministic: same plan + seed ⇒
/// bit-identical cycles and fault counters, which is what puts this
/// row under the `BENCH_ENFORCE_CYCLES` gate. The `faults_*` columns
/// record the injected-fault and recovery totals.
fn faulted_spanning_teardown(caps: u32) -> Scenario {
    let mut m = MicroMachine::new(2, 2, KernelMode::SemperOS);
    let a = m.vpe(0, 0);
    let b = m.vpe(1, 0);

    let t = Instant::now();
    let sels: Vec<CapSel> = (0..caps).map(|_| m.create_mem(a)).collect();
    for sel in &sels {
        let _ = m.delegate(a, b, *sel);
    }
    let build_ms = ms(t);

    // The plan starts at teardown: the build above runs fault-free so
    // the capability graph under test is always the same. The partition
    // window sits mid-teardown, so revokes before it exercise the
    // drop/duplicate/delay path and revokes inside it exercise the
    // deadline → retry → abort path.
    let now = m.machine().now().0;
    let plan = FaultPlan::seeded(0x5EED_FA17)
        .with_drop(30)
        .with_duplicate(20)
        .with_delay(50, 2_000)
        .with_partition(PartitionWindow {
            from: 0,
            to: 1,
            start: now + 50_000,
            end: now + 250_000,
        });
    m.machine().set_fault_plan(plan, 150_000);

    let kcalls_before = total_kcalls(m.machine());
    let dispatches_before = total_dispatches(m.machine());
    let retries_before: u64 = m.machine().kernel_stats().iter().map(|s| s.retries).sum();
    let aborted_before: u64 = m.machine().kernel_stats().iter().map(|s| s.ops_aborted).sum();
    let t = Instant::now();
    let revoke_cycles: u64 = sels.into_iter().rev().map(|sel| m.revoke(a, sel)).sum();
    let idle = m.machine().run_until_idle();
    let revoke_ms = ms(t);
    assert!(idle.0 > now, "faulted teardown never advanced");
    m.machine().check_invariants();
    m.machine().assert_quiescent();

    let st = m.machine().kernel_stats();
    let fs = m.machine().fault_stats().expect("fault plan installed");
    let faults = FaultObs {
        injected: fs.injected,
        retries: st.iter().map(|s| s.retries).sum::<u64>() - retries_before,
        ops_aborted: st.iter().map(|s| s.ops_aborted).sum::<u64>() - aborted_before,
        partitions_healed: fs.partitions_healed,
    };
    assert!(faults.injected > 0, "the plan never fired");
    Scenario {
        name: "faulted_spanning_teardown",
        size: caps,
        build_ms,
        revoke_ms,
        revoke_cycles,
        events: m.machine().events(),
        caps_deleted: total_caps_deleted(m.machine()),
        kcalls: total_kcalls(m.machine()) - kcalls_before,
        sweep: sweep_obs(m.machine(), dispatches_before),
        faults,
        promise: PromiseObs::default(),
    }
}

/// Service chains, blocking vs promise-pipelined (the PR 10 twins):
/// every group-0 client of a two-kernel machine runs the canonical
/// dependent chain of a service interaction — "open" (create a memory
/// capability), "read" (derive the transfer window from it), "hand
/// off" (delegate the window to the partner VPE in the other group),
/// then a second read against the root — once as four synchronous
/// syscalls, once submitted up front through `Syscall::SubmitAsync`
/// with dependencies named by *promise* selectors
/// (`Feature::PromiseIpc`) and only the tail redeemed. The pipelined
/// twin's submissions return immediately, so later clients' submission
/// round trips overlap the kernel-side delegate work of earlier
/// chains, and the final read rides the pipeline behind the still
/// in-flight cross-kernel hand-off (the `calls_pipelined` counter).
/// `revoke_sim_cycles` records the end-to-end makespan of the whole
/// workload (field name kept stable for the baseline parser) and the
/// `promises_*`/`calls_pipelined` columns the protocol counters.
/// `size` is the client count.
fn service_chain(clients: u16, pipelined: bool) -> Scenario {
    let t = Instant::now();
    let mut m = MicroMachine::new(2, clients, KernelMode::SemperOS);
    if pipelined {
        m.machine().enable_feature_everywhere(Feature::PromiseIpc);
    }
    // Only group-0 clients initiate (round-robin placement: even ids →
    // group 0); their partners in group 1 receive the hand-off.
    let client_vpes: Vec<VpeId> = (0..clients).map(|j| VpeId(j * 2)).collect();
    let build_ms = ms(t);

    // `root` is hop 0's capability (resolved selector when blocking,
    // promise selector when pipelined); `dep` the previous hop's.
    let hop_call = |hop: usize, client: VpeId, root: CapSel, dep: CapSel| match hop {
        0 => Syscall::CreateMem { size: 16 * 1024, perms: Perms::RW },
        1 => Syscall::DeriveMem { src: root, offset: 0, size: 4096, perms: Perms::R },
        2 => Syscall::Exchange {
            other: VpeId(client.0 ^ 1),
            own_sel: dep,
            other_sel: CapSel::INVALID,
            kind: ExchangeKind::Delegate,
        },
        _ => Syscall::DeriveMem { src: root, offset: 4096, size: 4096, perms: Perms::R },
    };
    const HOPS: usize = 4;

    let kcalls_before = total_kcalls(m.machine());
    let dispatches_before = total_dispatches(m.machine());
    let t = Instant::now();
    let t0 = m.machine().now();
    if pipelined {
        // Submit every client's whole chain; each submission replies
        // with a promise immediately, so the kernels work on earlier
        // chains while later clients are still submitting, and hop 3
        // rides the per-VPE pipeline behind the in-flight hand-off.
        let mut tails = Vec::with_capacity(client_vpes.len());
        for &client in &client_vpes {
            let (mut root, mut dep) = (CapSel::INVALID, CapSel::INVALID);
            for hop in 0..HOPS {
                let call = Syscall::SubmitAsync(Box::new(hop_call(hop, client, root, dep)));
                let (reply, _) = m.machine().syscall_blocking(client, call);
                match reply.result {
                    Ok(SysReplyData::Promise { sel }) => dep = sel,
                    other => panic!("submission must yield a promise: {other:?}"),
                }
                if hop == 0 {
                    root = dep;
                }
            }
            tails.push((client, dep));
        }
        // Redeem only the tails: program order guarantees the earlier
        // hops completed when the tail resolves.
        for (client, tail) in tails {
            let (reply, _) = m
                .machine()
                .syscall_blocking(client, Syscall::WaitPromise { sel: tail, block: true });
            assert!(
                matches!(reply.result, Ok(SysReplyData::Mem { .. } | SysReplyData::Sel(_))),
                "tail must resolve to the read-back window: {reply:?}"
            );
        }
    } else {
        for &client in &client_vpes {
            let (mut root, mut dep) = (CapSel::INVALID, CapSel::INVALID);
            for hop in 0..HOPS {
                let (reply, _) =
                    m.machine().syscall_blocking(client, hop_call(hop, client, root, dep));
                dep = match reply.result.unwrap_or_else(|e| panic!("hop {hop} failed: {e}")) {
                    SysReplyData::Mem { sel, .. } => sel,
                    SysReplyData::Sel(sel) => sel,
                    _ => CapSel::INVALID,
                };
                if hop == 0 {
                    root = dep;
                }
            }
        }
    }
    m.machine().run_until_idle();
    let chain_cycles = (m.machine().now() - t0).0;
    let chain_ms = ms(t);
    m.machine().check_invariants();
    m.machine().assert_quiescent();

    let st = m.machine().kernel_stats();
    let promise = PromiseObs {
        created: st.iter().map(|s| s.promises_created).sum(),
        resolved: st.iter().map(|s| s.promises_resolved).sum(),
        pipelined: st.iter().map(|s| s.calls_pipelined).sum(),
    };
    Scenario {
        name: if pipelined { "service_chain_pipelined" } else { "service_chain_blocking" },
        size: u32::from(clients),
        build_ms,
        revoke_ms: chain_ms,
        revoke_cycles: chain_cycles,
        events: m.machine().events(),
        caps_deleted: total_caps_deleted(m.machine()),
        kcalls: total_kcalls(m.machine()) - kcalls_before,
        sweep: sweep_obs(m.machine(), dispatches_before),
        faults: FaultObs::default(),
        promise,
    }
}

/// In-binary A/B of the owner-table reverse removal: the seed's linear
/// scan (re-implemented here over the same `BTreeMap` shape it used)
/// against `CapTable::remove_key`, sweeping a `n`-entry table to empty.
fn table_sweep_ab(n: u32) -> (f64, f64, f64) {
    let key = |i: u32| DdlKey::new(PeId(0), VpeId(0), CapType::Memory, i);

    // Naive: the pre-refactor implementation of remove_key —
    // `slots.iter().find(|(_, k)| **k == key)` then remove. Removal runs
    // in reverse insertion order so the scan cannot luck into an early
    // exit (the general case: deletions uncorrelated with table order).
    let mut naive: std::collections::BTreeMap<CapSel, DdlKey> =
        (0..n).map(|i| (CapSel(i), key(i))).collect();
    let t = Instant::now();
    for i in (0..n).rev() {
        let k = key(i);
        let sel = naive.iter().find(|(_, kk)| **kk == k).map(|(s, _)| *s).expect("present");
        naive.remove(&sel);
    }
    let naive_ms = ms(t);
    assert!(naive.is_empty());

    let mut table = CapTable::new(0);
    for i in 0..n {
        table.insert(CapSel(i), key(i)).expect("fresh selector");
    }
    let t = Instant::now();
    for i in (0..n).rev() {
        assert!(table.remove_key(key(i)).is_some());
    }
    let optimized_ms = ms(t);
    assert!(table.is_empty());

    let speedup = if optimized_ms > 0.0 { naive_ms / optimized_ms } else { f64::INFINITY };
    (naive_ms, optimized_ms, speedup)
}

fn main() {
    let smoke = std::env::var("SCALE_CAPOPS_SMOKE").is_ok();
    let scale = if smoke { 16 } else { 1 };
    semper_bench::banner(
        "scale_capops: kernel hot-path bookkeeping at 10-100x paper scale",
        "Figures 4/5 and Table 3 methodology",
    );

    // Each scenario is one closed job over its own machine(s); the
    // runner executes them on `BENCH_THREADS` workers and returns the
    // rows in submission order, so the table, the assertions below and
    // the JSON report are byte-identical to a serial run.
    let jobs: Vec<(&'static str, Job<'static, Scenario>)> = vec![
        ("chain_revoke_local", Box::new(move || chain_revoke(4096 / scale, false))),
        ("chain_revoke_spanning", Box::new(move || chain_revoke(1024 / scale, true))),
        ("tree_revoke_wide", Box::new(move || tree_revoke(10_000 / scale, 10_000 / scale))),
        ("dense_table_teardown", Box::new(move || dense_table_teardown(10_000 / scale))),
        ("group_migration_ring", Box::new(move || group_migration(4096 / scale))),
        (
            "rebalance_under_load",
            Box::new(move || rebalance_under_load((48 / scale).max(3) as u16, 2)),
        ),
        ("spanning_revoke_sequential", Box::new(move || spanning_revoke(2048 / scale, false))),
        ("spanning_revoke_batched", Box::new(move || spanning_revoke(2048 / scale, true))),
        // Floor of 4 instances: with fewer, every client sits in a
        // group that hosts a service instance and no close ever crosses
        // a kernel — the twins would measure nothing.
        ("file_workload_sequential", Box::new(move || file_workload((8 / scale).max(4), false))),
        ("file_workload_batched", Box::new(move || file_workload((8 / scale).max(4), true))),
        (
            "dense_table_teardown_sequential",
            Box::new(move || dense_table_spanning(10_000 / scale, false)),
        ),
        (
            "dense_table_teardown_parallel",
            Box::new(move || dense_table_spanning(10_000 / scale, true)),
        ),
        ("faulted_spanning_teardown", Box::new(move || faulted_spanning_teardown(2048 / scale))),
        // Floor of 4 clients so the smoke run still has enough chains
        // in flight for the submissions to overlap kernel-side work.
        (
            "service_chain_blocking",
            Box::new(move || service_chain(((64 / scale).max(4)) as u16, false)),
        ),
        (
            "service_chain_pipelined",
            Box::new(move || service_chain(((64 / scale).max(4)) as u16, true)),
        ),
    ];
    let submitted: Vec<&'static str> = jobs.iter().map(|(n, _)| *n).collect();
    let runner = Runner::from_env();
    let threads = runner.threads();
    println!("harness threads: {threads} (BENCH_THREADS)");

    let t_suite = Instant::now();
    let scenarios = runner.run(jobs.into_iter().map(|(_, job)| job).collect());
    let wall_ms_total = ms(t_suite);

    // Report emission must not depend on completion order: the merge
    // sorts by submission index, and this pins it — a row out of place
    // here means the deterministic merge broke.
    let returned: Vec<&'static str> = scenarios.iter().map(|s| s.name).collect();
    assert_eq!(returned, submitted, "scenario rows must come back in submission order");

    println!(
        "{:<26} {:>7} {:>12} {:>12} {:>16} {:>14} {:>8}",
        "Scenario", "Size", "Build (ms)", "Revoke (ms)", "Caps deleted/s", "Sim cycles", "Kcalls"
    );
    for s in &scenarios {
        println!(
            "{:<26} {:>7} {:>12.1} {:>12.1} {:>16.0} {:>14} {:>8}",
            s.name,
            s.size,
            s.build_ms,
            s.revoke_ms,
            s.caps_per_sec(),
            s.revoke_cycles,
            s.kcalls
        );
    }

    // The bulk API's acceptance gate: each batched scenario must move
    // strictly fewer cross-kernel messages than its sequential twin
    // (deterministic — these are simulated message counts, not timings).
    for (seq_name, bat_name) in [
        ("spanning_revoke_sequential", "spanning_revoke_batched"),
        ("file_workload_sequential", "file_workload_batched"),
    ] {
        let seq = scenarios.iter().find(|s| s.name == seq_name).expect("sequential twin");
        let bat = scenarios.iter().find(|s| s.name == bat_name).expect("batched twin");
        assert!(
            bat.kcalls < seq.kcalls,
            "{bat_name}: {} cross-kernel messages, not fewer than {seq_name}'s {}",
            bat.kcalls,
            seq.kcalls
        );
        println!();
        println!(
            "{bat_name} vs {seq_name}: kcalls {} -> {} ({:.1}x fewer), \
             sim cycles {} -> {} ({:.2}x)",
            seq.kcalls,
            bat.kcalls,
            seq.kcalls as f64 / bat.kcalls.max(1) as f64,
            seq.revoke_cycles,
            bat.revoke_cycles,
            seq.revoke_cycles as f64 / bat.revoke_cycles.max(1) as f64,
        );
    }

    // The parallel sweep's acceptance gates: the parallel twin must
    // finish in at most 1/1.5 of the sequential twin's simulated
    // cycles, and must reach the final state in at most half the
    // host-side handler dispatches (both deterministic counters).
    {
        let seq = scenarios
            .iter()
            .find(|s| s.name == "dense_table_teardown_sequential")
            .expect("sequential sweep twin");
        let par = scenarios
            .iter()
            .find(|s| s.name == "dense_table_teardown_parallel")
            .expect("parallel sweep twin");
        assert!(
            par.revoke_cycles * 3 <= seq.revoke_cycles * 2,
            "parallel sweep: {} sim cycles, needed <= {} (1.5x under sequential's {})",
            par.revoke_cycles,
            seq.revoke_cycles * 2 / 3,
            seq.revoke_cycles
        );
        assert!(
            par.sweep.dispatches * 2 <= seq.sweep.dispatches,
            "parallel sweep: {} handler dispatches, not half of sequential's {}",
            par.sweep.dispatches,
            seq.sweep.dispatches
        );
        println!();
        println!(
            "dense_table_teardown_parallel vs sequential: sim cycles {} -> {} ({:.2}x fewer), \
             handler dispatches {} -> {} ({:.1}x fewer), \
             partitions {}, fan-out {}, depth {}",
            seq.revoke_cycles,
            par.revoke_cycles,
            seq.revoke_cycles as f64 / par.revoke_cycles.max(1) as f64,
            seq.sweep.dispatches,
            par.sweep.dispatches,
            seq.sweep.dispatches as f64 / par.sweep.dispatches.max(1) as f64,
            par.sweep.partitions,
            par.sweep.fanout,
            par.sweep.depth,
        );
    }

    // The promise protocol's acceptance gate: pipelining the dependent
    // service chains must finish the whole workload in strictly fewer
    // simulated cycles than issuing the same chains blocking, and every
    // promise the pipelined twin minted must have resolved
    // (deterministic — both are simulated counters).
    {
        let blk =
            scenarios.iter().find(|s| s.name == "service_chain_blocking").expect("blocking twin");
        let pip =
            scenarios.iter().find(|s| s.name == "service_chain_pipelined").expect("pipelined twin");
        assert!(
            pip.revoke_cycles < blk.revoke_cycles,
            "service_chain_pipelined: {} sim cycles, not under blocking's {}",
            pip.revoke_cycles,
            blk.revoke_cycles
        );
        assert!(
            pip.promise.created > 0 && pip.promise.created == pip.promise.resolved,
            "pipelined twin leaked promises: {} created, {} resolved",
            pip.promise.created,
            pip.promise.resolved
        );
        assert!(
            pip.promise.pipelined > 0,
            "pipelined twin never pipelined a call: the read-back hop must ride \
             the pipeline behind the in-flight hand-off"
        );
        println!();
        println!(
            "service_chain_pipelined vs blocking: sim cycles {} -> {} ({:.1}% saved), \
             promises {} created / {} resolved, {} calls pipelined",
            blk.revoke_cycles,
            pip.revoke_cycles,
            100.0 * (blk.revoke_cycles - pip.revoke_cycles) as f64 / blk.revoke_cycles as f64,
            pip.promise.created,
            pip.promise.resolved,
            pip.promise.pipelined,
        );
    }

    let ab_n = 10_000 / scale;
    let (naive_ms, optimized_ms, speedup) = table_sweep_ab(ab_n);
    println!();
    println!(
        "owner-table sweep A/B ({ab_n} entries): naive {naive_ms:.1} ms, \
         current {optimized_ms:.1} ms, speedup {speedup:.1}x"
    );

    println!();
    println!("suite wall-clock: {wall_ms_total:.1} ms at {threads} thread(s)");

    let mut fields = vec![
        ("pr", Val::U(10)),
        ("bench", Val::S("scale_capops".into())),
        ("smoke", Val::U(u64::from(smoke))),
        // Harness-level fields (PR 8): worker count and total suite
        // wall-clock. Top-level, so the scenario-row scan never sees
        // them; `wall_ms_total` is wall-clock and thus — like
        // `revoke_ms` — exempt from byte-identity.
        ("threads", Val::U(threads as u64)),
        ("wall_ms_total", Val::F(wall_ms_total)),
        ("scenarios", Val::Arr(scenarios.iter().map(Scenario::to_val).collect())),
        (
            "table_sweep_ab",
            Val::obj(vec![
                ("entries", Val::U(ab_n as u64)),
                ("naive_ms", Val::F(naive_ms)),
                ("optimized_ms", Val::F(optimized_ms)),
                ("speedup", Val::F(speedup)),
            ]),
        ),
    ];

    // Serial-vs-parallel wall-clock: BENCH_SERIAL_REF names a report
    // recorded by a serial (BENCH_THREADS=1) run of the same suite; its
    // total wall-clock is embedded and the parallel speedup computed.
    // BENCH_ASSERT_SPEEDUP=<min> makes the speedup a hard gate — only
    // meaningful on multi-core hosts, hence opt-in (see EXPERIMENTS.md).
    if let Ok(serial_path) = std::env::var("BENCH_SERIAL_REF") {
        let serial_wall = read_report(&serial_path).and_then(|r| r.wall_ms_total);
        match serial_wall {
            Some(serial_ms) if serial_ms > 0.0 && wall_ms_total > 0.0 => {
                let speedup = serial_ms / wall_ms_total;
                println!(
                    "serial reference {serial_path}: {serial_ms:.1} ms -> {wall_ms_total:.1} ms \
                     at {threads} thread(s) ({speedup:.2}x)"
                );
                fields.push(("serial_wall_ms_total", Val::F(serial_ms)));
                fields.push(("parallel_speedup", Val::F(speedup)));
                if let Ok(min) = std::env::var("BENCH_ASSERT_SPEEDUP") {
                    let min: f64 = min.parse().expect("BENCH_ASSERT_SPEEDUP must be a number");
                    if speedup < min {
                        eprintln!(
                            "BENCH_ASSERT_SPEEDUP: {speedup:.2}x at {threads} threads, \
                             needed >= {min:.2}x over {serial_path}"
                        );
                        std::process::exit(1);
                    }
                }
            }
            _ => {
                eprintln!(
                    "warning: BENCH_SERIAL_REF={serial_path} has no wall_ms_total; \
                     skipping speedup comparison"
                );
                if std::env::var("BENCH_ASSERT_SPEEDUP").is_ok() {
                    eprintln!("BENCH_ASSERT_SPEEDUP: unreadable serial reference fails the gate");
                    std::process::exit(1);
                }
            }
        }
    }

    let enforce = std::env::var("BENCH_ENFORCE_CYCLES").is_ok();
    let mut cycle_drift = Vec::new();
    if let Ok(baseline_path) = std::env::var("BENCH_BASELINE") {
        if let Some(base) = read_report(&baseline_path) {
            let mut cmp = Vec::new();
            let mut comparable_rows = 0u32;
            for s in &scenarios {
                let Some(row) = base.rows.iter().find(|r| r.name == s.name) else { continue };
                let speedup = if s.revoke_ms > 0.0 { row.revoke_ms / s.revoke_ms } else { 0.0 };
                // Simulated cycles are comparable only at identical
                // scenario size (smoke and full reports differ).
                let cycles_comparable = row.size == u64::from(s.size);
                comparable_rows += u32::from(cycles_comparable);
                let cycles_identical = s.revoke_cycles == row.revoke_sim_cycles;
                // Host wall-clock is noisy, so regressions only warn —
                // but a >1.5x slowdown at identical size and identical
                // simulated work means the host-side implementation got
                // slower (the PR 4 -> PR 6 dense-table case) and
                // deserves a look.
                if cycles_comparable && row.revoke_ms > 0.0 && s.revoke_ms > 1.5 * row.revoke_ms {
                    eprintln!(
                        "warning: {} host time {:.1} ms is {:.1}x the baseline's {:.1} ms \
                         (soft gate; sim cycles {})",
                        s.name,
                        s.revoke_ms,
                        s.revoke_ms / row.revoke_ms,
                        row.revoke_ms,
                        if cycles_identical { "identical" } else { "differ" }
                    );
                }
                if cycles_comparable && !cycles_identical {
                    cycle_drift.push(format!(
                        "{}: {} cycles vs baseline {}",
                        s.name, s.revoke_cycles, row.revoke_sim_cycles
                    ));
                }
                cmp.push(Val::obj(vec![
                    ("name", Val::S(s.name.into())),
                    ("baseline_revoke_ms", Val::F(row.revoke_ms)),
                    ("revoke_ms", Val::F(s.revoke_ms)),
                    ("speedup", Val::F(speedup)),
                    ("baseline_sim_cycles", Val::U(row.revoke_sim_cycles)),
                    (
                        "sim_cycles_identical",
                        Val::U(u64::from(cycles_comparable && cycles_identical)),
                    ),
                ]));
                println!(
                    "vs baseline {:<24} {:>8.1} ms -> {:>8.1} ms  ({:.1}x)  cycles {}",
                    s.name,
                    row.revoke_ms,
                    s.revoke_ms,
                    row.revoke_ms / s.revoke_ms.max(1e-9),
                    if !cycles_comparable {
                        "n/a (size differs)"
                    } else if cycles_identical {
                        "identical"
                    } else {
                        "DRIFTED"
                    }
                );
            }
            fields.push(("baseline", Val::S(baseline_path.clone())));
            fields.push(("vs_baseline", Val::Arr(cmp)));
            if enforce && comparable_rows == 0 {
                // The gate must not pass vacuously: an empty or
                // format-drifted baseline compares nothing.
                eprintln!(
                    "BENCH_ENFORCE_CYCLES: no scenario of {baseline_path} was comparable \
                     (empty or format-drifted baseline); refusing to pass the cycle gate"
                );
                std::process::exit(1);
            }
        } else {
            eprintln!("warning: BENCH_BASELINE set but unreadable; skipping comparison");
            if enforce {
                eprintln!("BENCH_ENFORCE_CYCLES: unreadable baseline fails the cycle gate");
                std::process::exit(1);
            }
        }
    }

    let default_out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_PR10.json");
    let out_path = std::env::var("BENCH_OUT").unwrap_or_else(|_| default_out.to_string());
    let json = render(&Val::obj(fields));
    std::fs::write(&out_path, json).expect("write benchmark report");
    println!();
    println!("report written to {out_path}");

    if !cycle_drift.is_empty() {
        eprintln!();
        eprintln!("simulated cycles drifted from the baseline:");
        for d in &cycle_drift {
            eprintln!("  {d}");
        }
        eprintln!("(bit-identical cycles are the determinism contract; see EXPERIMENTS.md)");
        if enforce {
            std::process::exit(1);
        }
    }
}
