//! Figure 10: scalability of the Nginx webserver.
//!
//! Network-interface PEs constantly send requests to webserver processes
//! on separate PEs; each server replays the request-handling trace and
//! responds. The paper: requests scale almost linearly with 32 kernels
//! and 32 services; fewer OS resources flatten the curve.

use semper_base::MachineConfig;
use semper_bench::banner;
use semperos::experiment::run_nginx;

fn main() {
    banner("Figure 10: scalability of the Nginx webserver", "Figure 10");
    let configs: [(u16, u16); 6] = [(8, 8), (8, 16), (8, 32), (16, 16), (32, 16), (32, 32)];
    let servers = [32u16, 64, 96, 128, 160, 192, 224, 256];
    print!("{:<24}", "config \\ servers");
    for s in servers {
        print!(" {s:>8}");
    }
    println!("   (requests/s x1000)");
    for (k, svc) in configs {
        print!("{:<24}", format!("{k} kernels, {svc} services"));
        for n in servers {
            let cfg = MachineConfig::paper_testbed(k, svc);
            let res = run_nginx(&cfg, n, (n / 16).max(1), 4, 1_000_000, 4_000_000);
            print!(" {:>8.0}", res.requests_per_sec / 1000.0);
        }
        println!();
    }
    println!();
    println!("shape check: near-linear scaling at 32 kernels / 32 services;");
    println!("smaller OS configurations flatten as servers contend for the");
    println!("kernels' capability handling and the services' extents.");
}
