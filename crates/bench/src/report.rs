//! Machine-readable benchmark reports (`BENCH_*.json`).
//!
//! Every PR records a perf-trajectory entry: the `scale_capops` harness
//! measures the kernel hot paths at 10–100× paper scale and writes a
//! `BENCH_PR<n>.json` at the workspace root so later PRs can diff
//! against it. The writer here is a deliberately tiny JSON builder — the
//! offline build environment has no serde_json — that covers exactly the
//! value shapes the reports need.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Val {
    /// A float, rendered with enough precision for timings.
    F(f64),
    /// An unsigned integer.
    U(u64),
    /// A string.
    S(String),
    /// An array.
    Arr(Vec<Val>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Val)>) -> Val {
        Val::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// Renders a value as pretty-printed JSON.
pub fn render(v: &Val) -> String {
    let mut out = String::new();
    write_val(&mut out, v, 0);
    out.push('\n');
    out
}

fn write_val(out: &mut String, v: &Val, indent: usize) {
    match v {
        Val::F(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f:.3}");
            } else {
                out.push_str("null");
            }
        }
        Val::U(u) => {
            let _ = write!(out, "{u}");
        }
        Val::S(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Val::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(out, indent + 1);
                write_val(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push(']');
        }
        Val::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                pad(out, indent + 1);
                let _ = write!(out, "\"{k}\": ");
                write_val(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// One scenario row of a previously written report.
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// Scenario name.
    pub name: String,
    /// Scenario size (chain length, capability count, …).
    pub size: u64,
    /// Host wall-clock of the measured phase.
    pub revoke_ms: f64,
    /// Simulated cycles of the measured phase — the deterministic
    /// field; bit-identical across runs at equal size.
    pub revoke_sim_cycles: u64,
}

/// A previously written report: its scenario rows plus the harness-level
/// fields the parallel runner added in PR 8. Reports from before PR 8
/// parse fine — `threads`/`wall_ms_total` just come back `None`.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Scenario rows, in file order (= submission order).
    pub rows: Vec<ScenarioRow>,
    /// Harness worker threads (`BENCH_THREADS`), if recorded.
    pub threads: Option<u64>,
    /// Total harness wall-clock over the whole scenario suite, if
    /// recorded.
    pub wall_ms_total: Option<f64>,
}

/// Reads a previously written report. A full JSON parser would be
/// overkill for a file this harness wrote itself; a stateful line scan
/// over the known field order suffices. Relative paths resolve against
/// the workspace root (cargo runs bench binaries from the package
/// directory).
///
/// The scan keys scenario rows on the `"name"` … `"revoke_sim_cycles"`
/// field sequence; `vs_baseline` comparison rows lack
/// `revoke_sim_cycles` (they carry `baseline_sim_cycles` instead), so
/// they never complete a row. New scenario fields appended *after*
/// `revoke_sim_cycles` are invisible to the scan — the
/// append-parser-compatibly rule every report writer follows.
pub fn read_report(path: &str) -> Option<Report> {
    let workspace_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let text = std::fs::read_to_string(path)
        .or_else(|_| std::fs::read_to_string(format!("{workspace_root}/{path}")))
        .ok()?;
    let mut report = Report::default();
    let (mut name, mut size, mut revoke_ms) = (None::<String>, 0u64, 0f64);
    for line in text.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("\"name\": \"") {
            name = rest.strip_suffix("\",").map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("\"size\": ") {
            size = rest.trim_end_matches(',').parse().unwrap_or(0);
        } else if let Some(rest) = line.strip_prefix("\"revoke_ms\": ") {
            revoke_ms = rest.trim_end_matches(',').parse().unwrap_or(0.0);
        } else if let Some(rest) = line.strip_prefix("\"revoke_sim_cycles\": ") {
            if let (Some(n), Ok(cycles)) = (name.take(), rest.trim_end_matches(',').parse()) {
                report.rows.push(ScenarioRow {
                    name: n,
                    size,
                    revoke_ms,
                    revoke_sim_cycles: cycles,
                });
            }
        } else if let Some(rest) = line.strip_prefix("\"threads\": ") {
            report.threads = rest.trim_end_matches(',').parse().ok();
        } else if let Some(rest) = line.strip_prefix("\"wall_ms_total\": ") {
            report.wall_ms_total = rest.trim_end_matches(',').parse().ok();
        }
    }
    Some(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_objects() {
        let v = Val::obj(vec![
            ("name", Val::S("tree_revoke".into())),
            ("wall_ms", Val::F(12.5)),
            ("events", Val::U(80_000)),
            ("tags", Val::Arr(vec![Val::S("a".into()), Val::S("b".into())])),
        ]);
        let s = render(&v);
        assert!(s.contains("\"name\": \"tree_revoke\""));
        assert!(s.contains("\"wall_ms\": 12.500"));
        assert!(s.contains("\"events\": 80000"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = render(&Val::S("a\"b\\c\nd".into()));
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn empty_collections() {
        assert_eq!(render(&Val::Arr(vec![])), "[]\n");
        assert_eq!(render(&Val::Obj(vec![])), "{}\n");
    }

    #[test]
    fn report_round_trips_through_the_scan() {
        let v = Val::obj(vec![
            ("pr", Val::U(8)),
            ("smoke", Val::U(0)),
            ("threads", Val::U(4)),
            ("wall_ms_total", Val::F(221.5)),
            (
                "scenarios",
                Val::Arr(vec![
                    Val::obj(vec![
                        ("name", Val::S("tree_revoke_wide".into())),
                        ("size", Val::U(10_001)),
                        ("build_ms", Val::F(50.0)),
                        ("revoke_ms", Val::F(12.5)),
                        ("revoke_sim_cycles", Val::U(123_456)),
                        ("events", Val::U(80_000)),
                        // Columns appended after revoke_sim_cycles (the
                        // PR 9 fault and PR 10 promise counters) must be
                        // invisible to the scan — the append-parser-
                        // compatibly rule.
                        ("partitions_healed", Val::U(1)),
                        ("promises_created", Val::U(42)),
                        ("promises_resolved", Val::U(42)),
                        ("calls_pipelined", Val::U(17)),
                    ]),
                    Val::obj(vec![
                        ("name", Val::S("chain_revoke_local".into())),
                        ("size", Val::U(4_097)),
                        ("build_ms", Val::F(9.0)),
                        ("revoke_ms", Val::F(3.25)),
                        ("revoke_sim_cycles", Val::U(999)),
                    ]),
                ]),
            ),
            // Comparison rows must not register as scenario rows: they
            // have a name but no revoke_sim_cycles.
            (
                "vs_baseline",
                Val::Arr(vec![Val::obj(vec![
                    ("name", Val::S("tree_revoke_wide".into())),
                    ("baseline_revoke_ms", Val::F(13.0)),
                    ("revoke_ms", Val::F(12.5)),
                    ("baseline_sim_cycles", Val::U(123_456)),
                ])]),
            ),
        ]);
        let dir = std::env::temp_dir().join("semper_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.json");
        std::fs::write(&path, render(&v)).unwrap();
        let report = read_report(path.to_str().unwrap()).expect("readable report");
        assert_eq!(report.threads, Some(4));
        assert_eq!(report.wall_ms_total, Some(221.5));
        assert_eq!(report.rows.len(), 2, "vs_baseline rows must not be scanned as scenarios");
        assert_eq!(report.rows[0].name, "tree_revoke_wide");
        assert_eq!(report.rows[0].size, 10_001);
        assert_eq!(report.rows[0].revoke_sim_cycles, 123_456);
        assert_eq!(report.rows[1].name, "chain_revoke_local");
        assert_eq!(report.rows[1].revoke_ms, 3.25);
    }

    #[test]
    fn pre_pr8_reports_parse_without_harness_fields() {
        let v = Val::obj(vec![
            ("pr", Val::U(7)),
            (
                "scenarios",
                Val::Arr(vec![Val::obj(vec![
                    ("name", Val::S("x".into())),
                    ("size", Val::U(1)),
                    ("revoke_ms", Val::F(1.0)),
                    ("revoke_sim_cycles", Val::U(2)),
                ])]),
            ),
        ]);
        let dir = std::env::temp_dir().join("semper_bench_report_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pre_pr8.json");
        std::fs::write(&path, render(&v)).unwrap();
        let report = read_report(path.to_str().unwrap()).expect("readable report");
        assert_eq!(report.threads, None);
        assert_eq!(report.wall_ms_total, None);
        assert_eq!(report.rows.len(), 1);
    }
}
