//! Machine-readable benchmark reports (`BENCH_*.json`).
//!
//! Every PR records a perf-trajectory entry: the `scale_capops` harness
//! measures the kernel hot paths at 10–100× paper scale and writes a
//! `BENCH_PR<n>.json` at the workspace root so later PRs can diff
//! against it. The writer here is a deliberately tiny JSON builder — the
//! offline build environment has no serde_json — that covers exactly the
//! value shapes the reports need.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Val {
    /// A float, rendered with enough precision for timings.
    F(f64),
    /// An unsigned integer.
    U(u64),
    /// A string.
    S(String),
    /// An array.
    Arr(Vec<Val>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Convenience constructor for objects.
    pub fn obj(fields: Vec<(&str, Val)>) -> Val {
        Val::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }
}

/// Renders a value as pretty-printed JSON.
pub fn render(v: &Val) -> String {
    let mut out = String::new();
    write_val(&mut out, v, 0);
    out.push('\n');
    out
}

fn write_val(out: &mut String, v: &Val, indent: usize) {
    match v {
        Val::F(f) => {
            if f.is_finite() {
                let _ = write!(out, "{f:.3}");
            } else {
                out.push_str("null");
            }
        }
        Val::U(u) => {
            let _ = write!(out, "{u}");
        }
        Val::S(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
        Val::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                pad(out, indent + 1);
                write_val(out, item, indent + 1);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push(']');
        }
        Val::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (k, val)) in fields.iter().enumerate() {
                pad(out, indent + 1);
                let _ = write!(out, "\"{k}\": ");
                write_val(out, val, indent + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            pad(out, indent);
            out.push('}');
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_objects() {
        let v = Val::obj(vec![
            ("name", Val::S("tree_revoke".into())),
            ("wall_ms", Val::F(12.5)),
            ("events", Val::U(80_000)),
            ("tags", Val::Arr(vec![Val::S("a".into()), Val::S("b".into())])),
        ]);
        let s = render(&v);
        assert!(s.contains("\"name\": \"tree_revoke\""));
        assert!(s.contains("\"wall_ms\": 12.500"));
        assert!(s.contains("\"events\": 80000"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let s = render(&Val::S("a\"b\\c\nd".into()));
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"\n");
    }

    #[test]
    fn empty_collections() {
        assert_eq!(render(&Val::Arr(vec![])), "[]\n");
        assert_eq!(render(&Val::Obj(vec![])), "{}\n");
    }
}
