//! Support library for the benchmark harness.
//!
//! Every table and figure of the paper's evaluation (§5) has a bench
//! target in `benches/`; running `cargo bench` regenerates them all.
//! Each target prints the measured rows next to the paper's published
//! values where the paper gives them, so shape deviations are visible at
//! a glance. See `EXPERIMENTS.md` for the recorded comparison.

use semper_apps::AppKind;
use semper_base::MachineConfig;
use semperos::experiment::{parallel_efficiency, run_app_instances};

/// Harness worker-thread count, from the `BENCH_THREADS` environment
/// knob (`semperos::runner::env_threads`): every bench target sizes its
/// [`semperos::Runner`] from this, so one knob parallelizes the whole
/// harness. `1` (the default) is the serial harness.
pub fn threads() -> usize {
    semperos::runner::env_threads()
}

/// Prints a benchmark banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref} of 'SemperOS: A Distributed Capability");
    println!(" System', USENIX ATC 2019)");
    println!("================================================================");
}

/// Measures parallel efficiency of `app` at `instances` on `cfg`
/// (runs the single-instance baseline on the same configuration).
pub fn efficiency(cfg: &MachineConfig, app: AppKind, instances: u32) -> f64 {
    let t1 = run_app_instances(cfg, app, 1).mean_duration();
    let tn = run_app_instances(cfg, app, instances).mean_duration();
    parallel_efficiency(t1, tn)
}

/// Formats a percentage cell.
pub fn pct(v: f64) -> String {
    format!("{v:5.1}%")
}

/// Relative deviation of `measured` from `paper`, as a signed percent.
pub fn dev(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return "    —".to_string();
    }
    format!("{:+5.1}%", 100.0 * (measured - paper) / paper)
}

pub mod report;
