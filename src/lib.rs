//! Root crate of the SemperOS reproduction workspace.
//!
//! Hosts the workspace-level integration tests (`tests/`) and runnable
//! examples (`examples/`); re-exports the public crates for convenience.

pub use semper_apps as apps;
pub use semper_base as base;
pub use semper_caps as caps;
pub use semper_kernel as kernel;
pub use semper_m3fs as m3fs;
pub use semper_noc as noc;
pub use semper_sim as sim;
pub use semperos as os;
